// Package ospool models the Open Science Pool: an opportunistic,
// glidein-based HTC pool shared by many submitters. The model captures
// the dynamics the paper's experiments hinge on — gradual glidein
// ramp-up, fluctuating opportunistic capacity, pilot lifetimes and
// preemption, a periodic fair-share negotiation cycle with a bounded
// match rate, and Stash-cache input delivery — so that throughput
// scaling, wait-time growth under concurrent DAGMans, and erratic
// running-job footprints emerge rather than being scripted.
package ospool

import (
	"fmt"
	"math"
	"sort"

	"fdw/internal/classad"
	"fdw/internal/htcondor"
	"fdw/internal/obs"
	"fdw/internal/sim"
	"fdw/internal/stash"
)

// SiteConfig describes one contributing site.
type SiteConfig struct {
	Name     string
	MaxSlots int     // peak concurrent glideins this site can host
	Speed    float64 // mean execution-time multiplier (1.0 = reference)
	SpeedSD  float64 // per-glidein speed variation
	CpusPer  int     // cores per slot
	MemoryMB int     // memory per slot
}

// Config parameterizes the pool.
type Config struct {
	Sites []SiteConfig

	NegotiationInterval sim.Time // negotiator cycle period
	ProvisionInterval   sim.Time // glidein factory period
	MatchesPerCycle     int      // claim limit per negotiation cycle

	GlideinRampMean     sim.Time // mean pilot provisioning delay
	GlideinLifetimeMean sim.Time // mean pilot lifetime
	GlideinIdleTimeout  sim.Time // idle pilots retire after this long

	// Opportunistic availability fluctuates between AvailabilityMin and
	// 1.0 with the given period (other users' demand ebbs and flows).
	AvailabilityPeriod sim.Time
	AvailabilityMin    float64

	// ExecJitterSigma is the lognormal sigma applied to execution times.
	ExecJitterSigma float64

	// FailureProb is the per-execution probability that a job exits
	// non-zero (node black holes, transfer failures): fault injection
	// for DAGMan's RETRY machinery. Zero disables failures.
	FailureProb float64
}

// DefaultConfig yields an OSPool-scale setup calibrated for the paper's
// experiments: several hundred reachable slots at peak, minutes-scale
// glidein ramp, hours-scale pilot lifetimes, a 30-second negotiator.
func DefaultConfig() Config {
	sites := []SiteConfig{
		{Name: "uchicago", MaxSlots: 130, Speed: 1.00, SpeedSD: 0.08, CpusPer: 4, MemoryMB: 16384},
		{Name: "sdsc", MaxSlots: 90, Speed: 0.92, SpeedSD: 0.10, CpusPer: 4, MemoryMB: 16384},
		{Name: "unl", MaxSlots: 70, Speed: 1.05, SpeedSD: 0.10, CpusPer: 4, MemoryMB: 16384},
		{Name: "syracuse", MaxSlots: 60, Speed: 1.12, SpeedSD: 0.12, CpusPer: 4, MemoryMB: 16384},
		{Name: "ucsd", MaxSlots: 50, Speed: 0.95, SpeedSD: 0.08, CpusPer: 4, MemoryMB: 16384},
		{Name: "wisc", MaxSlots: 60, Speed: 1.00, SpeedSD: 0.10, CpusPer: 4, MemoryMB: 16384},
	}
	return Config{
		Sites:               sites,
		NegotiationInterval: 30,
		ProvisionInterval:   60,
		MatchesPerCycle:     120,
		GlideinRampMean:     420,
		GlideinLifetimeMean: 6 * 3600,
		GlideinIdleTimeout:  900,
		AvailabilityPeriod:  4 * 3600,
		AvailabilityMin:     0.45,
		ExecJitterSigma:     0.18,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if len(c.Sites) == 0 {
		return fmt.Errorf("ospool: no sites")
	}
	for _, s := range c.Sites {
		if s.MaxSlots <= 0 || s.Speed <= 0 {
			return fmt.Errorf("ospool: site %q has invalid slots/speed", s.Name)
		}
	}
	if c.NegotiationInterval <= 0 || c.ProvisionInterval <= 0 {
		return fmt.Errorf("ospool: non-positive intervals")
	}
	if c.MatchesPerCycle <= 0 {
		return fmt.Errorf("ospool: non-positive MatchesPerCycle")
	}
	if c.AvailabilityMin <= 0 || c.AvailabilityMin > 1 {
		return fmt.Errorf("ospool: AvailabilityMin %v outside (0,1]", c.AvailabilityMin)
	}
	if c.FailureProb < 0 || c.FailureProb >= 1 {
		return fmt.Errorf("ospool: FailureProb %v outside [0,1)", c.FailureProb)
	}
	return nil
}

// TotalSlots returns the sum of site capacities.
func (c Config) TotalSlots() int {
	n := 0
	for _, s := range c.Sites {
		n += s.MaxSlots
	}
	return n
}

type glidein struct {
	id      int
	site    *SiteConfig
	speed   float64
	ad      classad.Ad
	job     *htcondor.Job
	schedd  *htcondor.Schedd
	expire  sim.Time
	idleAt  sim.Time
	retired bool
	done    *sim.Event // pending completion event for the running job
}

// ExecFault describes an injected outcome for one execution attempt,
// returned by the pool's ExecFault hook. The zero value means "run
// normally".
type ExecFault struct {
	// Fail makes the job exit non-zero after its normal runtime
	// (application-level failure).
	Fail bool
	// BlackHole makes the job exit non-zero after a short constant
	// runtime — the node-black-hole pathology, where a broken slot
	// churns through jobs far faster than healthy ones finish them.
	BlackHole bool
	// TransferFail aborts the attempt when the input transfer completes:
	// the job exits non-zero having done no work.
	TransferFail bool
}

// blackHoleExecSeconds is how quickly a black-hole slot fails a job.
const blackHoleExecSeconds = 30

// AttemptOutcome classifies how one execution attempt ended, for the
// recovery layer's failure accounting.
type AttemptOutcome int

// Attempt outcomes reported to the RecoveryHook.
const (
	AttemptOK        AttemptOutcome = iota
	AttemptFailed                   // exited non-zero (exec fault, black hole, transfer fail)
	AttemptDeadline                 // evicted by the recovery layer's wall-clock deadline
	AttemptPreempted                // glidein lifetime/drain preemption
)

func (o AttemptOutcome) String() string {
	switch o {
	case AttemptOK:
		return "ok"
	case AttemptFailed:
		return "failed"
	case AttemptDeadline:
		return "deadline"
	case AttemptPreempted:
		return "preempted"
	default:
		return fmt.Sprintf("AttemptOutcome(%d)", int(o))
	}
}

// RecoveryHook is the narrow seam the adaptive recovery layer
// (internal/recovery) plugs into the pool, mirroring SetSiteDown: the
// pool consults it at decision points and reports every attempt outcome
// back to it. A nil hook disables all recovery behaviour and leaves the
// pool byte-identical to the pre-hook code. Implementations must draw
// any randomness from their own split sim.RNG stream.
type RecoveryHook interface {
	// VetoMatch reports whether matchmaking at site is currently vetoed
	// (an open circuit breaker). Vetoed slots are skipped in the
	// negotiator's scan; the job stays idle and renegotiates later.
	VetoMatch(site string, now sim.Time) bool
	// JobDeadlineSeconds returns the wall-clock budget for one attempt
	// of j (transfer + execution). Non-positive means unlimited. An
	// attempt exceeding its budget is evicted back to the queue.
	JobDeadlineSeconds(j *htcondor.Job, now sim.Time) float64
	// AttemptStarted fires when a claim begins executing j at site.
	AttemptStarted(site string, j *htcondor.Job, now sim.Time)
	// AttemptEnded fires when the attempt leaves its slot; ranSeconds is
	// how long the slot was held.
	AttemptEnded(site string, j *htcondor.Job, outcome AttemptOutcome, ranSeconds float64, now sim.Time)
	// OpenBreakers lists sites whose breakers are open (sorted), for the
	// pool's horizon-timeout diagnostics.
	OpenBreakers(now sim.Time) []string
}

// Pool is the simulated OSPool.
type Pool struct {
	kernel *sim.Kernel
	rng    *sim.RNG
	cfg    Config
	cache  *stash.Cache

	// Fault-injection hooks (internal/faults). Both are optional and
	// consulted at decision points only; they must draw any randomness
	// from their own split sim.RNG stream, so attaching them never
	// perturbs the pool's baseline variate sequence.
	siteDown  func(site string, now sim.Time) bool
	execFault func(site string, j *htcondor.Job, now sim.Time) ExecFault

	// recovery, if set, is the adaptive recovery layer's seam (see
	// RecoveryHook). Like the fault hooks it is consulted at decision
	// points only and must not perturb the pool's variate sequence.
	recovery RecoveryHook

	schedds  []*htcondor.Schedd
	glideins []*glidein
	pending  int // glideins requested but not yet arrived
	nextID   int
	stopped  bool

	phase0 float64 // availability phase offset

	stopFns []func()

	// counters
	started   int
	completed int
	evictions int

	// wastedSeconds accumulates slot time that produced no completed
	// work: failed attempts, preemptions, deadline evictions, and
	// cancelled claims. Recovery A/B reporting reads it; nothing in the
	// pool's own scheduling ever does.
	wastedSeconds float64

	obs *obs.Registry
}

// New creates a pool bound to a kernel. cache may be nil (transfers
// then cost nothing).
func New(k *sim.Kernel, cfg Config, cache *stash.Cache) (*Pool, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := k.RNG().Split(0x056001)
	p := &Pool{
		kernel: k,
		rng:    rng,
		cfg:    cfg,
		cache:  cache,
		phase0: rng.Uniform(0, 2*math.Pi),
	}
	return p, nil
}

// AddSchedd registers a submitter with the pool.
func (p *Pool) AddSchedd(s *htcondor.Schedd) { p.schedds = append(p.schedds, s) }

// SetObs attaches a metrics registry (nil disables instrumentation).
// The registry only records pool dynamics — provisioning, matching, and
// preemption decisions never read from it.
func (p *Pool) SetObs(r *obs.Registry) { p.obs = r }

// Obs returns the attached registry (nil when observability is off).
func (p *Pool) Obs() *obs.Registry { return p.obs }

// SetSiteDown installs the site-outage hook: while fn reports a site
// down, the factory provisions no glideins there and pilots arriving
// from in-flight requests are discarded. nil clears the hook.
func (p *Pool) SetSiteDown(fn func(site string, now sim.Time) bool) { p.siteDown = fn }

// SetExecFault installs the per-execution fault hook, consulted once
// per claim after the pool's own FailureProb draw. nil clears the hook.
func (p *Pool) SetExecFault(fn func(site string, j *htcondor.Job, now sim.Time) ExecFault) {
	p.execFault = fn
}

// SetRecovery installs the adaptive recovery hook (internal/recovery).
// nil clears it, restoring the exact baseline behaviour.
func (p *Pool) SetRecovery(h RecoveryHook) { p.recovery = h }

// DrainSite retires every live glidein at the named site, evicting
// running jobs back to their schedds (a site outage beginning). It
// returns how many glideins were drained. Pending requests for the
// site still arrive unless the SiteDown hook reports it down.
func (p *Pool) DrainSite(name string) int {
	var doomed []*glidein
	for _, g := range p.glideins {
		if g.site.Name == name {
			doomed = append(doomed, g)
		}
	}
	for _, g := range doomed {
		p.expireGlidein(g)
	}
	if p.obs != nil && len(doomed) > 0 {
		p.obs.Counter("fdw_ospool_glideins_drained_total", "site", name).
			Add(uint64(len(doomed)))
	}
	return len(doomed)
}

// slotGauges refreshes live/busy slot occupancy after pool changes.
func (p *Pool) slotGauges() {
	if p.obs == nil {
		return
	}
	p.obs.Gauge("fdw_ospool_slots_live").Set(float64(len(p.glideins)))
	p.obs.Gauge("fdw_ospool_slots_busy").Set(float64(p.RunningCount()))
	p.obs.Gauge("fdw_ospool_glideins_pending").Set(float64(p.pending))
}

// Start arms the provisioning and negotiation tickers.
func (p *Pool) Start() {
	p.stopFns = append(p.stopFns,
		p.kernel.Ticker(0, p.cfg.ProvisionInterval, func(sim.Time) { p.provision() }),
		p.kernel.Ticker(p.cfg.NegotiationInterval/2, p.cfg.NegotiationInterval, func(sim.Time) { p.negotiate() }),
	)
}

// Stop cancels the pool's tickers; in-flight completion events still run.
func (p *Pool) Stop() {
	p.stopped = true
	for _, fn := range p.stopFns {
		fn()
	}
	p.stopFns = nil
}

// RunningCount returns the number of busy glideins.
func (p *Pool) RunningCount() int {
	n := 0
	for _, g := range p.glideins {
		if g.job != nil {
			n++
		}
	}
	return n
}

// SlotCount returns the number of live glideins (busy + idle).
func (p *Pool) SlotCount() int { return len(p.glideins) }

// Stats returns cumulative pool counters.
func (p *Pool) Stats() (started, completed, evictions int) {
	return p.started, p.completed, p.evictions
}

// WastedSeconds returns cumulative slot time that produced no completed
// work (failed attempts, preemptions, deadline evictions, cancelled
// claims) — the recovery A/B matrix's wasted-CPU metric.
func (p *Pool) WastedSeconds() float64 { return p.wastedSeconds }

// availability is the opportunistic capacity fraction at time t:
// a smooth cycle (other communities' load) with deterministic jitter.
func (p *Pool) availability(t sim.Time) float64 {
	base := (1 + p.cfg.AvailabilityMin) / 2
	amp := (1 - p.cfg.AvailabilityMin) / 2
	v := base + amp*math.Sin(2*math.Pi*float64(t)/float64(p.cfg.AvailabilityPeriod)+p.phase0)
	// Small bounded ripple on top, keyed to the hour so it is reproducible.
	hour := math.Floor(float64(t) / 900)
	ripple := 0.08 * math.Sin(hour*2.399963) // golden-angle hop
	v += ripple
	return math.Max(p.cfg.AvailabilityMin*0.8, math.Min(1, v))
}

// demand counts idle jobs the schedds expose this cycle.
func (p *Pool) demand() int {
	n := 0
	for _, s := range p.schedds {
		n += len(s.IdleJobs())
	}
	return n
}

// provision requests new glideins when demand exceeds live capacity and
// retires idle pilots that outlived their usefulness.
func (p *Pool) provision() {
	if p.stopped {
		return
	}
	now := p.kernel.Now()

	// Retire expired or long-idle pilots.
	live := p.glideins[:0]
	for _, g := range p.glideins {
		switch {
		case g.job == nil && now >= g.expire:
			g.retired = true
			if p.obs != nil {
				p.obs.Counter("fdw_ospool_glideins_retired_total", "reason", "expired").Inc()
			}
		case g.job == nil && p.cfg.GlideinIdleTimeout > 0 && now-g.idleAt > p.cfg.GlideinIdleTimeout:
			g.retired = true
			if p.obs != nil {
				p.obs.Counter("fdw_ospool_glideins_retired_total", "reason", "idle").Inc()
			}
		default:
			live = append(live, g)
		}
	}
	p.glideins = live
	p.slotGauges()

	capacity := int(float64(p.cfg.TotalSlots()) * p.availability(now))
	if p.obs != nil {
		p.obs.Gauge("fdw_ospool_capacity_slots").Set(float64(capacity))
	}
	desired := p.demand()
	if desired > capacity {
		desired = capacity
	}
	need := desired - len(p.glideins) - p.pending
	if need <= 0 {
		return
	}
	// Glidein factories respond in batches; cap the burst per cycle.
	maxBurst := p.cfg.TotalSlots() / 8
	if maxBurst < 8 {
		maxBurst = 8
	}
	if need > maxBurst {
		need = maxBurst
	}
	for i := 0; i < need; i++ {
		site := p.pickSite()
		if site == nil {
			break
		}
		p.pending++
		if p.obs != nil {
			p.obs.Counter("fdw_ospool_glideins_requested_total", "site", site.Name).Inc()
		}
		delay := sim.Time(p.rng.Exp(float64(p.cfg.GlideinRampMean)))
		if delay < 30 {
			delay = 30
		}
		p.kernel.After(delay, func() { p.glideinArrives(site) })
	}
}

// pickSite chooses a site weighted by its remaining slot headroom,
// skipping sites an outage has taken down.
func (p *Pool) pickSite() *SiteConfig {
	used := map[string]int{}
	for _, g := range p.glideins {
		used[g.site.Name]++
	}
	type cand struct {
		site *SiteConfig
		free int
	}
	var cands []cand
	total := 0
	now := p.kernel.Now()
	for i := range p.cfg.Sites {
		s := &p.cfg.Sites[i]
		if p.siteDown != nil && p.siteDown(s.Name, now) {
			continue
		}
		free := s.MaxSlots - used[s.Name]
		if free > 0 {
			cands = append(cands, cand{s, free})
			total += free
		}
	}
	if total == 0 {
		return nil
	}
	pick := p.rng.Intn(total)
	for _, c := range cands {
		if pick < c.free {
			return c.site
		}
		pick -= c.free
	}
	return cands[len(cands)-1].site
}

func (p *Pool) glideinArrives(site *SiteConfig) {
	p.pending--
	if p.stopped {
		return
	}
	now := p.kernel.Now()
	if p.siteDown != nil && p.siteDown(site.Name, now) {
		// The pilot reached a site that has since gone down: it never
		// reports for duty.
		if p.obs != nil {
			p.obs.Counter("fdw_ospool_glideins_lost_total", "site", site.Name).Inc()
		}
		return
	}
	speed := p.rng.TruncNormal(site.Speed, site.SpeedSD, site.Speed*0.6, site.Speed*1.6)
	g := &glidein{
		id:    p.nextID,
		site:  site,
		speed: speed,
		ad: classad.Ad{
			"Cpus":           classad.Number(float64(site.CpusPer)),
			"Memory":         classad.Number(float64(site.MemoryMB)),
			"HasSingularity": classad.Bool(true),
			"GLIDEIN_Site":   classad.String(site.Name),
		},
		expire: now + sim.Time(p.rng.Exp(float64(p.cfg.GlideinLifetimeMean))),
		idleAt: now,
	}
	p.nextID++
	p.glideins = append(p.glideins, g)
	if p.obs != nil {
		p.obs.Counter("fdw_ospool_glideins_arrived_total", "site", site.Name).Inc()
		p.slotGauges()
	}
	// Pilot lifetime: if still running a job at expiry, the job is
	// preempted (evicted) and returns to the queue.
	p.kernel.At(g.expire, func() { p.expireGlidein(g) })
}

func (p *Pool) expireGlidein(g *glidein) {
	if g.retired {
		return
	}
	g.retired = true
	if g.job != nil {
		if g.done != nil {
			g.done.Cancel()
		}
		job, schedd := g.job, g.schedd
		g.job, g.schedd, g.done = nil, nil, nil
		p.evictions++
		elapsed := float64(p.kernel.Now() - job.StartTime)
		p.wastedSeconds += elapsed
		if p.obs != nil {
			p.obs.Counter("fdw_ospool_preemptions_total", "site", g.site.Name).Inc()
		}
		if p.recovery != nil {
			p.recovery.AttemptEnded(g.site.Name, job, AttemptPreempted, elapsed, p.kernel.Now())
		}
		_ = schedd.MarkEvicted(job)
	}
	for i, o := range p.glideins {
		if o == g {
			p.glideins = append(p.glideins[:i], p.glideins[i+1:]...)
			break
		}
	}
	p.slotGauges()
}

// ownerState aggregates fair-share accounting per owner.
type ownerState struct {
	owner     string
	running   int
	perSchedd [][]*htcondor.Job // idle jobs grouped by schedd
	queue     []*htcondor.Job   // interleaved merge of perSchedd
	schedd    map[*htcondor.Job]*htcondor.Schedd
}

// mergeInterleaved round-robins across the owner's schedds so that
// concurrent DAGMans under one user progress together instead of
// draining in schedd order.
func (os *ownerState) mergeInterleaved() {
	total := 0
	for _, q := range os.perSchedd {
		total += len(q)
	}
	os.queue = make([]*htcondor.Job, 0, total)
	for i := 0; total > 0; i++ {
		for _, q := range os.perSchedd {
			if i < len(q) {
				os.queue = append(os.queue, q[i])
				total--
			}
		}
	}
}

// negotiate runs one fair-share matchmaking cycle.
func (p *Pool) negotiate() {
	if p.stopped {
		return
	}
	if p.obs != nil {
		p.obs.Counter("fdw_ospool_negotiation_cycles_total").Inc()
	}
	// Build per-owner queues from all schedds.
	owners := map[string]*ownerState{}
	var order []string
	running := map[string]int{}
	for _, g := range p.glideins {
		if g.job != nil {
			running[g.job.Owner]++
		}
	}
	for _, s := range p.schedds {
		perOwner := map[string][]*htcondor.Job{}
		for _, j := range s.IdleJobs() {
			os, ok := owners[j.Owner]
			if !ok {
				os = &ownerState{owner: j.Owner, running: running[j.Owner], schedd: map[*htcondor.Job]*htcondor.Schedd{}}
				owners[j.Owner] = os
				order = append(order, j.Owner)
			}
			perOwner[j.Owner] = append(perOwner[j.Owner], j)
			os.schedd[j] = s
		}
		for owner, jobs := range perOwner {
			//lint:allow maporder each key appends to its own owner's slice, so iterations commute
			owners[owner].perSchedd = append(owners[owner].perSchedd, jobs)
		}
	}
	if len(owners) == 0 {
		return
	}
	for _, os := range owners {
		os.mergeInterleaved()
	}
	sort.Strings(order) // deterministic iteration

	// Free slot list.
	var free []*glidein
	for _, g := range p.glideins {
		if g.job == nil && !g.retired {
			free = append(free, g)
		}
	}
	matches := 0
	// Round-robin across owners ordered by effective usage (fewest
	// running first) — HTCondor's fair-share in miniature.
	for matches < p.cfg.MatchesPerCycle && len(free) > 0 {
		sort.SliceStable(order, func(a, b int) bool {
			return owners[order[a]].running < owners[order[b]].running
		})
		progress := false
		for _, name := range order {
			os := owners[name]
			if len(os.queue) == 0 {
				continue
			}
			if matches >= p.cfg.MatchesPerCycle || len(free) == 0 {
				break
			}
			job := os.queue[0]
			slot := -1
			for i, g := range free {
				if p.recovery != nil && p.recovery.VetoMatch(g.site.Name, p.kernel.Now()) {
					continue // open circuit breaker: site sits out this cycle
				}
				ok, err := job.Matches(g.ad)
				if err == nil && ok {
					slot = i
					break
				}
			}
			if slot < 0 {
				// Nothing in the pool matches this job now; skip the
				// owner's head-of-line job this cycle.
				os.queue = os.queue[1:]
				continue
			}
			g := free[slot]
			free = append(free[:slot], free[slot+1:]...)
			os.queue = os.queue[1:]
			os.running++
			p.claim(g, job, os.schedd[job])
			matches++
			progress = true
		}
		if !progress {
			break
		}
	}
	if p.obs != nil && matches > 0 {
		p.obs.Counter("fdw_ospool_matches_total").Add(uint64(matches))
		p.slotGauges()
	}
}

// claim starts job on glidein g: input transfer, execution, output.
func (p *Pool) claim(g *glidein, job *htcondor.Job, schedd *htcondor.Schedd) {
	host := fmt.Sprintf("glidein-%d.%s", g.id, g.site.Name)
	if err := schedd.MarkRunning(job, host); err != nil {
		return
	}
	g.job = job
	g.schedd = schedd
	p.started++

	transferIn := 0.0
	transferKey := ""
	if p.cache != nil && job.InputBytes > 0 {
		key := job.InputKey
		if key == "" {
			key = fmt.Sprintf("job-%s", job.ID())
		}
		transferKey = key
		transferIn = p.cache.TransferSeconds(g.site.Name, stash.Object{Key: key, Bytes: job.InputBytes})
	}
	exec := job.BaseExecSeconds * g.speed
	if p.cfg.ExecJitterSigma > 0 {
		exec *= p.rng.LogNormal(0, p.cfg.ExecJitterSigma)
	}
	if exec < 1 {
		exec = 1
	}
	transferOut := 0.0
	if p.cache != nil && job.OutputBytes > 0 {
		// Outputs always go back to origin storage (never cached).
		transferOut = 3 + float64(job.OutputBytes)/50e6
	}
	exitCode := 0
	if p.cfg.FailureProb > 0 && p.rng.Bool(p.cfg.FailureProb) {
		exitCode = 1
	}
	transferAborted := false
	if p.execFault != nil {
		switch fault := p.execFault(g.site.Name, job, p.kernel.Now()); {
		case fault.TransferFail:
			// The attempt dies when the input transfer lands: no
			// execution, no output.
			exitCode = 1
			exec = 0
			transferOut = 0
			transferAborted = true
		case fault.BlackHole:
			exitCode = 1
			exec = blackHoleExecSeconds
			transferOut = 0
		case fault.Fail:
			exitCode = 1
		}
	}
	if transferKey != "" && !transferAborted {
		// Only a delivery that actually lands warms the regional cache;
		// a retry after an aborted transfer pays origin bandwidth again.
		p.cache.Commit(g.site.Name, transferKey)
	}
	if p.recovery != nil {
		p.recovery.AttemptStarted(g.site.Name, job, p.kernel.Now())
	}
	if p.obs != nil {
		now := p.kernel.Now()
		if transferIn > 0 {
			p.obs.Histogram("fdw_ospool_transfer_in_seconds").Observe(transferIn)
		}
		if sp := schedd.JobSpan(job); sp != nil {
			sp.AnnotateAt("input_transfer", now, transferIn)
			sp.AnnotateAt("execute", now+sim.Time(transferIn), exec)
		}
	}
	total := sim.Time(transferIn + exec + transferOut)
	if p.recovery != nil {
		if d := p.recovery.JobDeadlineSeconds(job, p.kernel.Now()); d > 0 && sim.Time(d) < total {
			// The attempt will outrun its wall-clock budget (HTCondor
			// periodic_remove analogue): evict at the deadline instead of
			// letting a black-hole or straggler slot hold the job until
			// the horizon. Deadline evictions do not consume the job's
			// max_retries budget — the job renegotiates like a preemption.
			deadline := sim.Time(d)
			g.done = p.kernel.After(deadline, func() {
				g.done = nil
				if g.job != job {
					return // evicted meanwhile
				}
				g.job, g.schedd = nil, nil
				g.idleAt = p.kernel.Now()
				p.evictions++
				p.wastedSeconds += float64(deadline)
				if p.obs != nil {
					p.obs.Counter("fdw_ospool_deadline_evictions_total", "site", g.site.Name).Inc()
				}
				if p.recovery != nil {
					p.recovery.AttemptEnded(g.site.Name, job, AttemptDeadline, float64(deadline), p.kernel.Now())
				}
				_ = schedd.MarkEvicted(job)
				p.slotGauges()
			})
			return
		}
	}
	g.done = p.kernel.After(total, func() {
		g.done = nil
		if g.job != job {
			return // evicted meanwhile
		}
		g.job, g.schedd = nil, nil
		g.idleAt = p.kernel.Now()
		if exitCode != 0 {
			p.wastedSeconds += float64(total)
		}
		if p.recovery != nil {
			outcome := AttemptOK
			if exitCode != 0 {
				outcome = AttemptFailed
			}
			p.recovery.AttemptEnded(g.site.Name, job, outcome, float64(total), p.kernel.Now())
		}
		if exitCode != 0 && job.Failures < job.MaxRetries {
			// Job-level retry (max_retries): the failed attempt
			// re-queues instead of terminating the job.
			job.Failures++
			p.evictions++
			if p.obs != nil {
				p.obs.Counter("fdw_ospool_job_retries_total").Inc()
			}
			_ = schedd.MarkEvicted(job)
			return
		}
		p.completed++
		_ = schedd.MarkCompleted(job, exitCode)
		p.slotGauges()
	})
}

// CancelClaim tears down the running claim for j, freeing its glidein
// without changing the job's schedd state — the caller decides what the
// job becomes next (the recovery layer's hedging uses this to reclaim
// the losing attempt's slot before AdoptResult/AbortRunning). The
// slot's elapsed time counts as wasted. It reports whether a running
// claim for j was found.
func (p *Pool) CancelClaim(j *htcondor.Job) bool {
	for _, g := range p.glideins {
		if g.job == j {
			if g.done != nil {
				g.done.Cancel()
				g.done = nil
			}
			g.job, g.schedd = nil, nil
			g.idleAt = p.kernel.Now()
			p.wastedSeconds += float64(p.kernel.Now() - j.StartTime)
			if p.obs != nil {
				p.obs.Counter("fdw_ospool_claims_cancelled_total", "site", g.site.Name).Inc()
			}
			p.slotGauges()
			return true
		}
	}
	return false
}

// RunUntilDone advances the kernel until every registered schedd has
// drained or the horizon passes; it returns an error on timeout.
// The pool is stopped either way.
func (p *Pool) RunUntilDone(horizon sim.Time) error {
	allDone := func() bool {
		for _, s := range p.schedds {
			if !s.Done() {
				return false
			}
		}
		return true
	}
	for !allDone() && p.kernel.Now() < horizon {
		if !p.kernel.Step() {
			break
		}
	}
	p.Stop()
	if !allDone() {
		return fmt.Errorf("ospool: workload not drained by horizon %v (completed %d): %s",
			horizon, p.completed, p.stuckDiagnostic())
	}
	return nil
}

// stuckDiagnostic summarizes queue and pool state for the horizon
// timeout error, so a chaos-sweep failure is debuggable from the error
// string alone.
func (p *Pool) stuckDiagnostic() string {
	var idle, running, held, staged, completed, removed int
	for _, s := range p.schedds {
		staged += s.StagedCount()
		idle += len(s.IdleJobs())
		for _, j := range s.AllJobs() {
			switch j.Status {
			case htcondor.Running:
				running++
			case htcondor.Held:
				held++
			case htcondor.Completed:
				completed++
			case htcondor.Removed:
				removed++
			}
		}
	}
	msg := fmt.Sprintf("jobs idle=%d running=%d held=%d staged=%d completed=%d removed=%d; glideins live=%d busy=%d pending=%d",
		idle, running, held, staged, completed, removed,
		len(p.glideins), p.RunningCount(), p.pending)
	if p.recovery != nil {
		if open := p.recovery.OpenBreakers(p.kernel.Now()); len(open) > 0 {
			msg += fmt.Sprintf("; open breakers=%v", open)
		}
	}
	return msg
}
