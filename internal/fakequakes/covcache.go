package fakequakes

import (
	"container/list"
	"fmt"
	"math"
	"path/filepath"
	"sync"

	"fdw/internal/geom"
	"fdw/internal/linalg"
	"fdw/internal/obs"
)

// FactorCache memoizes Cholesky factors of the slip covariance. It
// extends the paper's .npy-recycling idea one level up: just as a
// single job computes the O(n²) distance matrices once and every
// parallel rupture job reuses the files (DistanceMatrices), batches of
// ruptures over the same fault pay the O(n³) factorization once and
// reuse the factor from this LRU.
//
// Entries are keyed by a hash of everything the covariance depends on:
// the fault geometry, the correlation kernel, the correlation lengths
// (hence the target magnitude), the log-slip sigma, and the rupture
// patch's *relative* subfault layout. Relative — not absolute — layout,
// because the kernel only sees coordinate differences, so two
// placements of the same patch shape share a factor; this is what makes
// the cache hit on every scenario of a fixed-Mw batch.
//
// Cached factors are immutable: Get returns the stored matrix, and
// callers must not write to it (MulVec and SolveCholesky do not).
type FactorCache struct {
	mu      sync.Mutex
	cap     int
	entries map[uint64]*list.Element
	lru     list.List // front = most recently used; values are *factorEntry
	hits    uint64
	misses  uint64

	obs *obs.Registry
}

type factorEntry struct {
	key uint64
	l   *linalg.Matrix
}

// DefaultFactorCacheSize bounds the shared cache: with the paper-scale
// meshes a factor is a few MB (n² float64), so 16 entries stay well
// under typical per-slot memory.
const DefaultFactorCacheSize = 16

// DefaultFactorCache is shared by all Generators unless overridden, so
// concurrent harness runs over the same fault recycle each other's
// factors. It is safe for concurrent use.
var DefaultFactorCache = NewFactorCache(DefaultFactorCacheSize)

// NewFactorCache returns an empty LRU holding at most capacity factors.
func NewFactorCache(capacity int) *FactorCache {
	if capacity < 1 {
		capacity = 1
	}
	return &FactorCache{cap: capacity, entries: make(map[uint64]*list.Element)}
}

// SetObs mirrors the cache's hit/miss/eviction tallies into a metrics
// registry (nil disables). Lookup behaviour is unchanged either way.
func (c *FactorCache) SetObs(r *obs.Registry) {
	c.mu.Lock()
	c.obs = r
	c.mu.Unlock()
}

// Get returns the factor stored under key, marking it most recently
// used. The second result reports whether the key was present.
func (c *FactorCache) Get(key uint64) (*linalg.Matrix, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		if c.obs != nil {
			c.obs.Counter("fdw_covcache_hits_total").Inc()
		}
		return el.Value.(*factorEntry).l, true
	}
	c.misses++
	if c.obs != nil {
		c.obs.Counter("fdw_covcache_misses_total").Inc()
	}
	return nil, false
}

// Put stores l under key, evicting the least recently used entry when
// the cache is full. Storing an existing key refreshes its recency.
func (c *FactorCache) Put(key uint64, l *linalg.Matrix) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*factorEntry).l = l
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&factorEntry{key: key, l: l})
	for c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*factorEntry).key)
		if c.obs != nil {
			c.obs.Counter("fdw_covcache_evictions_total").Inc()
		}
	}
	if c.obs != nil {
		c.obs.Gauge("fdw_covcache_entries").Set(float64(c.lru.Len()))
	}
}

// Stats returns the cumulative hit and miss counts.
func (c *FactorCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached factors.
func (c *FactorCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// factorNPYPattern mirrors the DistanceMatrices file convention so
// factors can be recycled across processes the same way the .npy
// distance products are recycled across jobs.
const factorNPYPattern = "covfactor_%016x.npy"

// SaveNPY writes every cached factor into dir as covfactor_<key>.npy,
// the on-disk mirror of the paper's distance-matrix recycling.
func (c *FactorCache) SaveNPY(dir string) error {
	c.mu.Lock()
	snapshot := make([]*factorEntry, 0, c.lru.Len())
	for el := c.lru.Front(); el != nil; el = el.Next() {
		snapshot = append(snapshot, el.Value.(*factorEntry))
	}
	c.mu.Unlock()
	for _, e := range snapshot {
		if err := writeNPY(filepath.Join(dir, fmt.Sprintf(factorNPYPattern, e.key)), e.l); err != nil {
			return err
		}
	}
	return nil
}

// LoadNPY inserts every covfactor_*.npy in dir into the cache. A dir
// with no factor files is not an error (the cold-start case, like a
// missing distances_subfault.npy), and a file that does not decode as
// a .npy matrix — e.g. one truncated by a crash predating the atomic
// writeNPY — is skipped rather than trusted or fatal: the factor it
// held is simply recomputed on the next miss, while the intact files
// still warm the cache.
func (c *FactorCache) LoadNPY(dir string) error {
	paths, err := filepath.Glob(filepath.Join(dir, "covfactor_*.npy"))
	if err != nil {
		return err
	}
	for _, p := range paths {
		var key uint64
		if _, err := fmt.Sscanf(filepath.Base(p), factorNPYPattern, &key); err != nil {
			continue
		}
		m, err := readNPY(p)
		if err != nil {
			continue // corrupt or vanished: recompute on miss instead
		}
		c.Put(key, m)
	}
	return nil
}

// fnv1a implements 64-bit FNV-1a over words; the covariance key mixes
// float bits and small ints through it. A 64-bit digest makes an
// accidental collision across a 16-entry cache astronomically unlikely.
type fnv1a uint64

func newFNV() fnv1a { return 0xcbf29ce484222325 }

func (h *fnv1a) word(v uint64) {
	x := uint64(*h)
	for i := 0; i < 8; i++ {
		x ^= (v >> (8 * i)) & 0xff
		x *= 0x100000001b3
	}
	*h = fnv1a(x)
}

func (h *fnv1a) float(v float64) { h.word(math.Float64bits(v)) }

// str mixes a string byte-by-byte, then its length (so consecutive
// strings cannot alias by shifting bytes between them).
func (h *fnv1a) str(s string) {
	x := uint64(*h)
	for i := 0; i < len(s); i++ {
		x ^= uint64(s[i])
		x *= 0x100000001b3
	}
	*h = fnv1a(x)
	h.word(uint64(len(s)))
}

// faultCovHash digests the fault properties the slip covariance reads:
// the mesh dimensions, subfault spacing, and per-subfault grid layout.
func faultCovHash(f *geom.Fault) uint64 {
	h := newFNV()
	h.word(uint64(f.NumSubfaults()))
	h.word(uint64(f.NAlong))
	h.word(uint64(f.NDown))
	h.float(f.SubfaultLen)
	h.float(f.SubfaultWid)
	for i := range f.Subfaults {
		s := &f.Subfaults[i]
		h.word(uint64(uint32(s.Along))<<32 | uint64(uint32(s.Down)))
	}
	return uint64(h)
}

// covKernelVersion tags every covariance-factor key with the linalg
// kernel generation whose rounding produced the factor. The blocked
// Cholesky repin (DESIGN.md §15) changed the factor's bits, so a
// covfactor_*.npy written by the previous kernel must never satisfy a
// lookup from the current one — a stale hit would silently break the
// bit-determinism contract. Bump this whenever kernel rounding changes.
//
//	1: unblocked left-looking Cholesky (plain multiply-add)
//	2: blocked left-looking Cholesky (fused GEMM prefix)
const covKernelVersion = 2

// covFactorKey identifies one covariance factorization: kernel
// generation, fault geometry, correlation kernel, correlation lengths,
// sigma, and the patch's relative layout.
func covFactorKey(faultHash uint64, kern Kernel, sigmaLn, aS, aD float64, f *geom.Fault, patch []int) uint64 {
	return covFactorKeyAt(covKernelVersion, faultHash, kern, sigmaLn, aS, aD, f, patch)
}

// covFactorKeyAt is covFactorKey for an explicit kernel generation;
// tests use it to reconstruct the keys a pre-repin build wrote.
func covFactorKeyAt(version uint64, faultHash uint64, kern Kernel, sigmaLn, aS, aD float64, f *geom.Fault, patch []int) uint64 {
	h := newFNV()
	h.word(version)
	h.word(faultHash)
	h.word(uint64(kern))
	h.float(sigmaLn)
	h.float(aS)
	h.float(aD)
	h.word(uint64(len(patch)))
	if len(patch) > 0 {
		s0 := &f.Subfaults[patch[0]]
		for _, idx := range patch {
			s := &f.Subfaults[idx]
			h.word(uint64(uint32(s.Along-s0.Along))<<32 | uint64(uint32(s.Down-s0.Down)))
		}
	}
	return uint64(h)
}
