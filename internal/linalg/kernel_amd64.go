//go:build amd64

package linalg

// kern4x8asm is the AVX2+FMA micro-kernel in kernel_amd64.s: the 4×8
// c tile held in eight ymm accumulators, one VFMADD231PD per (row,
// half-tile) per k. VFMADD's single rounding matches math.FMA exactly,
// which is what keeps this path bit-identical to goKern4x8.
//
//go:noescape
func kern4x8asm(kc int, a *float64, lda int, b *float64, c *float64, ldc int)

// cpuHasAVX2FMA reports whether the CPU and OS support AVX2 and FMA3
// (CPUID feature bits plus XGETBV confirming the OS saves ymm state).
// Implemented in kernel_amd64.s; no x/sys/cpu dependency.
func cpuHasAVX2FMA() bool

// useAsmKern gates the assembly micro-kernel. A variable, not a const,
// so tests can force the portable path and assert bit equality.
var useAsmKern = cpuHasAVX2FMA()

// kern4x8 applies one micro-tile update: c[0..4)[0..8) extended by the
// kc-term fused chain against packed b. a is a 4×kc window with row
// stride lda; b is a packed gemmNR-wide tile, k-major; c has row
// stride ldc.
func kern4x8(kc int, a []float64, lda int, b []float64, c []float64, ldc int) {
	if kc <= 0 {
		return
	}
	if useAsmKern {
		kern4x8asm(kc, &a[0], lda, &b[0], &c[0], ldc)
		return
	}
	goKern4x8(kc, a, lda, b, c, ldc)
}
