package expt

import (
	"fmt"
	"io"

	"fdw/internal/core"
	"fdw/internal/faults"
	"fdw/internal/htcondor"
)

// The chaos sweep runs the Fig. 2-scale FDW workflow under the
// standard fault-plan grid (faults.StandardPlans) and asserts the
// recovery invariants the paper's value proposition rests on:
//
//  1. termination — the executor reaches Done before the horizon for
//     every plan (no deadlock or hang, even when the DAG fails);
//  2. job conservation — every submitted job is accounted for:
//     submitted = completed-ok + failed (non-zero exit) + removed;
//  3. determinism — for a fixed seed the printed report and rows are
//     byte-identical at any Workers value and GOMAXPROCS.
//
// An invariant violation is returned as an error (the sweep is a test
// harness as much as an experiment).

// ChaosRow is one (plan, seed) cell of the chaos sweep.
type ChaosRow struct {
	Plan string
	Seed uint64

	DAGDone   bool // executor terminated before the horizon
	DAGFailed bool // at least one node exhausted its retries

	Submitted   int // jobs accepted by the schedd
	CompletedOK int // terminated with exit 0
	FailedJobs  int // terminated with non-zero exit
	Removed     int // removed/offloaded before running

	NodeRetries int     // DAGMan RETRY budget spent across nodes
	Evictions   int     // pool preemptions + job-level requeues
	RuntimeH    float64 // DAG wall time, hours
}

// chaosWorkflowConfig is the swept workload: the Fig. 2 full-station
// cell at the smallest paper quantity, shrunk by opt.Scale.
func chaosWorkflowConfig(opt Options, plan string, seed uint64) core.Config {
	cfg := core.DefaultConfig()
	cfg.Name = fmt.Sprintf("chaos-%s", plan)
	cfg.Waveforms = opt.scaleN(Fig2Quantities[0])
	cfg.Seed = seed
	return cfg
}

// Chaos runs the chaos sweep and returns one row per (plan, seed), in
// grid order. Rows are printed to opt.Out as they are aggregated; the
// fan-out across opt.Workers leaves the bytes identical to a serial
// run.
func Chaos(opt Options) ([]ChaosRow, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	plans := faults.StandardPlans()
	w := opt.out()
	fmt.Fprintf(w, "Chaos sweep — %d fault plans × %d seeds (scale %.3f)\n", len(plans), len(opt.Seeds), opt.Scale)
	fmt.Fprintf(w, "%15s %6s %5s %6s | %6s %6s %6s %7s | %7s %6s %10s\n",
		"plan", "seed", "done", "dagok",
		"jobs", "ok", "fail", "removed",
		"retries", "evict", "runtime h")

	reps := len(opt.Seeds)
	rows := make([]ChaosRow, len(plans)*reps)
	err := forEachIndex(opt.workers(), len(rows), func(i int) error {
		plan, seed := plans[i/reps], opt.Seeds[i%reps]
		row, err := chaosOne(opt, plan, seed)
		if err != nil {
			return fmt.Errorf("chaos plan %q seed %d: %w", plan.Name, seed, err)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		dagok := "ok"
		if r.DAGFailed {
			dagok = "FAILED"
		}
		fmt.Fprintf(w, "%15s %6d %5t %6s | %6d %6d %6d %7d | %7d %6d %10.2f\n",
			r.Plan, r.Seed, r.DAGDone, dagok,
			r.Submitted, r.CompletedOK, r.FailedJobs, r.Removed,
			r.NodeRetries, r.Evictions, r.RuntimeH)
	}
	return rows, nil
}

// chaosOne simulates one (plan, seed) cell and checks its invariants.
func chaosOne(opt Options, plan faults.Plan, seed uint64) (ChaosRow, error) {
	var row ChaosRow
	env, err := core.NewEnvObs(seed, opt.Pool, opt.Obs)
	if err != nil {
		return row, err
	}
	wf, err := core.NewWorkflow(chaosWorkflowConfig(opt, plan.Name, seed), env.Kernel, env.Pool, nil)
	if err != nil {
		return row, err
	}
	inj, err := faults.New(env.Kernel, plan)
	if err != nil {
		return row, err
	}
	inj.SetObs(opt.Obs)
	inj.Attach(env.Pool, wf.Schedd)
	// Invariant 1 (termination): RunBatch errors iff the executor did
	// not reach Done by the horizon. A DAG whose node exhausted its
	// retries still terminates — that is the recovery contract under
	// test.
	if err := core.RunBatch(env, []*core.Workflow{wf}, opt.Horizon); err != nil {
		return row, fmt.Errorf("termination invariant: %w", err)
	}

	var ok, failed, removed int
	for _, j := range wf.Schedd.AllJobs() {
		switch {
		case j.Status == htcondor.Completed && j.ExitCode == 0:
			ok++
		case j.Status == htcondor.Completed:
			failed++
		case j.Status == htcondor.Removed:
			removed++
		default:
			return row, fmt.Errorf("conservation invariant: job %s ended in state %v", j.ID(), j.Status)
		}
	}
	submitted := len(wf.Schedd.AllJobs())
	if submitted != ok+failed+removed {
		return row, fmt.Errorf("conservation invariant: submitted %d != ok %d + failed %d + removed %d",
			submitted, ok, failed, removed)
	}

	_, _, evictions := env.Pool.Stats()
	row = ChaosRow{
		Plan:        plan.Name,
		Seed:        seed,
		DAGDone:     wf.Exec.Done(),
		DAGFailed:   wf.Exec.Failed(),
		Submitted:   submitted,
		CompletedOK: ok,
		FailedJobs:  failed,
		Removed:     removed,
		NodeRetries: wf.Exec.TotalRetries(),
		Evictions:   evictions,
		RuntimeH:    wf.RuntimeHours(),
	}
	if !row.DAGDone {
		return row, fmt.Errorf("termination invariant: executor not done after RunBatch")
	}
	return row, nil
}

// WriteChaosCSV writes the chaos-sweep rows.
func WriteChaosCSV(w io.Writer, rows []ChaosRow) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			r.Plan, fmt.Sprintf("%d", r.Seed),
			fmt.Sprintf("%t", r.DAGDone), fmt.Sprintf("%t", r.DAGFailed),
			d(r.Submitted), d(r.CompletedOK), d(r.FailedJobs), d(r.Removed),
			d(r.NodeRetries), d(r.Evictions), f(r.RuntimeH),
		}
	}
	return writeCSV(w, []string{
		"plan", "seed", "dag_done", "dag_failed",
		"submitted", "completed_ok", "failed", "removed",
		"node_retries", "evictions", "runtime_h",
	}, out)
}
