package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"

	"fdw/internal/sim"
)

func TestCounterGaugeBasics(t *testing.T) {
	var now sim.Time = 100
	r := NewRegistry(func() sim.Time { return now })

	c := r.Counter("jobs_total", "phase", "a")
	c.Inc()
	now = 250
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter value %d, want 5", c.Value())
	}
	// Same name+labels resolves to the same instrument; label order is
	// canonicalized.
	if r.Counter("jobs_total", "phase", "a") != c {
		t.Fatal("counter identity not stable")
	}
	if r.Counter("jobs_total", "phase", "b") == c {
		t.Fatal("distinct labels collapsed")
	}

	g := r.Gauge("queue_depth")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge value %v, want 5", g.Value())
	}
	if g.At() != 250 {
		t.Fatalf("gauge at %v, want sim t=250", g.At())
	}
}

func TestLabelCanonicalization(t *testing.T) {
	r := NewRegistry(nil)
	a := r.Counter("x", "b", "2", "a", "1")
	b := r.Counter("x", "a", "1", "b", "2")
	if a != b {
		t.Fatal("label order changed metric identity")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 1 {
		t.Fatalf("got %d counters, want 1", len(snap.Counters))
	}
	if snap.Counters[0].Labels["a"] != "1" || snap.Counters[0].Labels["b"] != "2" {
		t.Fatalf("labels %v", snap.Counters[0].Labels)
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc()
	r.Gauge("g").Set(3)
	r.Histogram("h").Observe(1)
	sp := r.StartSpan("job", "1.0")
	sp.Annotate("submit")
	sp.End("completed")
	if r.SpanCount() != 0 || r.Now() != 0 {
		t.Fatal("nil registry retained state")
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms)+len(snap.Spans) != 0 {
		t.Fatalf("nil registry snapshot non-empty: %+v", snap)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry(nil)
	h := r.HistogramBuckets("wait_seconds", []float64{1, 2, 5, 10, 100})
	// 100 samples uniform over (0, 10]: v = 0.1, 0.2, ..., 10.0.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 10)
	}
	if h.Count() != 100 {
		t.Fatalf("count %d", h.Count())
	}
	if got, want := h.Sum(), 505.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum %v, want %v", got, want)
	}
	// Exact quantiles are 5.0 / 9.0 / 9.9; bucketed estimates must land
	// inside the right bucket.
	if p50 := h.Quantile(0.50); p50 < 2 || p50 > 5 {
		t.Fatalf("p50 %v outside (2,5] bucket", p50)
	}
	if p90 := h.Quantile(0.90); p90 < 5 || p90 > 10 {
		t.Fatalf("p90 %v outside (5,10] bucket", p90)
	}
	if q0 := h.Quantile(0); q0 != 0.1 {
		t.Fatalf("q0 %v, want observed min 0.1", q0)
	}
	if q1 := h.Quantile(1); q1 != 10 {
		t.Fatalf("q1 %v, want observed max 10", q1)
	}
	// Monotone in q.
	prev := 0.0
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantiles not monotone: q=%v -> %v < %v", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	r := NewRegistry(nil)
	h := r.HistogramBuckets("x", []float64{1, 10})
	h.Observe(5)
	h.Observe(1000) // beyond the last bound → implicit +Inf bucket
	if h.Count() != 2 {
		t.Fatalf("count %d", h.Count())
	}
	if p99 := h.Quantile(0.99); p99 < 10 || p99 > 1000 {
		t.Fatalf("p99 %v outside overflow bucket (10, max]", p99)
	}
}

func TestSpanLifecycle(t *testing.T) {
	var now sim.Time
	r := NewRegistry(func() sim.Time { return now })
	sp := r.StartSpan("job", "w1/1.0")
	sp.Annotate("submit")
	now = 30
	sp.Annotate("match")
	sp.AnnotateAt("input_transfer", 30, 12.5)
	sp.AnnotateAt("execute", 42.5, 0)
	now = 200
	sp.End("completed")
	sp.End("ignored-second-end")

	if !sp.Ended() || sp.Status() != "completed" {
		t.Fatalf("ended=%v status=%q", sp.Ended(), sp.Status())
	}
	if sp.DurationSeconds() != 200 {
		t.Fatalf("duration %v", sp.DurationSeconds())
	}
	evs := sp.Events()
	want := []string{"submit", "match", "input_transfer", "execute"}
	if len(evs) != len(want) {
		t.Fatalf("%d events, want %d", len(evs), len(want))
	}
	for i, name := range want {
		if evs[i].Name != name {
			t.Fatalf("event %d = %q, want %q", i, evs[i].Name, name)
		}
	}
	if evs[2].Value != 12.5 {
		t.Fatalf("input_transfer value %v", evs[2].Value)
	}
	if r.SpanCount() != 1 {
		t.Fatalf("span count %d", r.SpanCount())
	}
}

func TestSpanLimit(t *testing.T) {
	r := NewRegistry(nil)
	r.SetSpanLimit(2)
	for i := 0; i < 5; i++ {
		sp := r.StartSpan("job", "x")
		sp.End("done") // dropped spans must still be safe to use
	}
	if r.SpanCount() != 2 {
		t.Fatalf("retained %d spans, want 2", r.SpanCount())
	}
	if r.SpansDropped() != 3 {
		t.Fatalf("dropped %d, want 3", r.SpansDropped())
	}
}

func TestJSONSnapshotRoundTrip(t *testing.T) {
	var now sim.Time = 60
	r := NewRegistry(func() sim.Time { return now })
	r.Counter("events_total", "type", "submit").Add(3)
	r.Gauge("slots_busy").Set(12)
	h := r.HistogramBuckets("exec_seconds", []float64{10, 100})
	h.Observe(42)
	sp := r.StartSpan("job", "1.0")
	sp.Annotate("submit")
	now = 90
	sp.End("completed")

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if snap.SimNow != 90 {
		t.Fatalf("sim_now %v", snap.SimNow)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 3 || snap.Counters[0].Labels["type"] != "submit" {
		t.Fatalf("counters %+v", snap.Counters)
	}
	if len(snap.Gauges) != 1 || snap.Gauges[0].Value != 12 {
		t.Fatalf("gauges %+v", snap.Gauges)
	}
	if len(snap.Histograms) != 1 || snap.Histograms[0].Count != 1 || snap.Histograms[0].Sum != 42 {
		t.Fatalf("histograms %+v", snap.Histograms)
	}
	if len(snap.Spans) != 1 || snap.Spans[0].Status != "completed" || snap.Spans[0].End != 90 {
		t.Fatalf("spans %+v", snap.Spans)
	}
	// Text rendering of the decoded snapshot.
	var txt bytes.Buffer
	if err := snap.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"events_total", "slots_busy", "exec_seconds", "spans"} {
		if !strings.Contains(txt.String(), want) {
			t.Fatalf("text summary missing %q:\n%s", want, txt.String())
		}
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry(nil)
	r.Counter("fdw_events_total", "type", "submit").Add(7)
	r.Gauge("fdw_slots_busy").Set(3.5)
	h := r.HistogramBuckets("fdw_exec_seconds", []float64{10, 100})
	h.Observe(42)
	h.Observe(420)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE fdw_events_total counter",
		`fdw_events_total{type="submit"} 7`,
		"# TYPE fdw_slots_busy gauge",
		"fdw_slots_busy 3.5",
		"# TYPE fdw_exec_seconds histogram",
		`fdw_exec_seconds_bucket{le="100"} 1`,
		`fdw_exec_seconds_bucket{le="+Inf"} 2`,
		"fdw_exec_seconds_sum 462",
		"fdw_exec_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestRegistryRaceClean hammers one registry from many goroutines; the
// -race pass in scripts/check.sh is the actual assertion.
func TestRegistryRaceClean(t *testing.T) {
	r := NewRegistry(nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("c", "g", string(rune('a'+g))).Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(float64(i))
				sp := r.StartSpan("job", "x")
				sp.Annotate("submit")
				sp.End("completed")
				if i%100 == 0 {
					var buf bytes.Buffer
					_ = r.WritePrometheus(&buf)
					_ = r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	var total uint64
	for g := 0; g < 8; g++ {
		total += r.Counter("c", "g", string(rune('a'+g))).Value()
	}
	if total != 8*500 {
		t.Fatalf("counter total %d, want %d", total, 8*500)
	}
	if r.Histogram("h").Count() != 8*500 {
		t.Fatalf("hist count %d", r.Histogram("h").Count())
	}
}
