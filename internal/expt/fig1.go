package expt

import (
	"fmt"

	"fdw/internal/fakequakes"
	"fdw/internal/geom"
	"fdw/internal/sim"
)

// Fig1Products holds one rupture scenario and its GNSS waveforms — the
// data the paper visualizes in Fig. 1 (a simulated rupture's slip
// distribution on the fault and displacement waveforms at stations).
type Fig1Products struct {
	Rupture   *fakequakes.Rupture
	Waveforms []fakequakes.Waveform
	Fault     *geom.Fault
	Stations  []geom.Station
}

// Fig1 runs the FakeQuakes kernels end-to-end on a coarse Chilean mesh
// for one target magnitude and a station subset, returning the Fig. 1
// data products. nStations controls cost (the paper plots a handful).
func Fig1(seed uint64, targetMw float64, nStations int) (*Fig1Products, error) {
	if nStations <= 0 {
		return nil, fmt.Errorf("expt: need at least one station")
	}
	cfg := geom.DefaultChileFault()
	cfg.SubfaultKm = 20 // coarse mesh keeps the demo fast
	fault, err := geom.BuildFault(cfg)
	if err != nil {
		return nil, err
	}
	all := geom.FullChileanStations()
	if nStations > len(all) {
		nStations = len(all)
	}
	stations := all[:nStations]

	dist := fakequakes.ComputeDistanceMatrices(fault, stations)
	gen, err := fakequakes.NewGenerator(fault, dist)
	if err != nil {
		return nil, err
	}
	gen.Kern = fakequakes.VonKarmanApprox
	rng := sim.NewRNG(seed)
	rupture, err := gen.GenerateMw("run000001", targetMw, rng)
	if err != nil {
		return nil, err
	}
	gf, err := fakequakes.GreensForScenario(fault, stations, dist, fakequakes.DefaultGFConfig())
	if err != nil {
		return nil, err
	}
	wfs, err := fakequakes.SynthesizeWaveforms(rupture, gf, fakequakes.DefaultNoise(), rng)
	if err != nil {
		return nil, err
	}
	return &Fig1Products{
		Rupture:   rupture,
		Waveforms: wfs,
		Fault:     fault,
		Stations:  stations,
	}, nil
}
