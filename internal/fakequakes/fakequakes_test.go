package fakequakes

import (
	"math"
	"os"
	"testing"
	"testing/quick"

	"fdw/internal/geom"
	"fdw/internal/mseed"
	"fdw/internal/sim"
)

// smallFault returns a compact mesh for fast tests.
func smallFault(t testing.TB) *geom.Fault {
	t.Helper()
	cfg := geom.ChileFaultConfig{
		LatSouth: -36, LatNorth: -33,
		TrenchLon: -73.5, TrenchLonSlope: 0.15,
		DipShallowDeg: 10, DipDeepDeg: 30,
		WidthKm: 120, SubfaultKm: 15,
	}
	f, err := geom.BuildFault(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func smallSetup(t testing.TB, nStations int) (*geom.Fault, []geom.Station, *DistanceMatrices) {
	t.Helper()
	f := smallFault(t)
	stations := geom.FullChileanStations()[:nStations]
	d := ComputeDistanceMatrices(f, stations)
	return f, stations, d
}

func TestMomentMagnitudeInverse(t *testing.T) {
	for _, mw := range []float64{6.5, 7.5, 8.1, 9.0} {
		if got := Magnitude(Moment(mw)); math.Abs(got-mw) > 1e-9 {
			t.Fatalf("Magnitude(Moment(%v)) = %v", mw, got)
		}
	}
	// Hanks & Kanamori: Mw 9.0 ≈ 3.98e22 N·m.
	if m0 := Moment(9.0); math.Abs(m0-3.98e22)/3.98e22 > 0.01 {
		t.Fatalf("Moment(9.0) = %v", m0)
	}
	if !math.IsInf(Magnitude(0), -1) {
		t.Fatal("Magnitude(0) should be -Inf")
	}
}

func TestScalingLawMonotone(t *testing.T) {
	prev := ScalingLaw(7.0)
	for mw := 7.2; mw <= 9.4; mw += 0.2 {
		d := ScalingLaw(mw)
		if d.LengthKm <= prev.LengthKm || d.WidthKm <= prev.WidthKm {
			t.Fatalf("scaling law not monotone at Mw %.1f", mw)
		}
		prev = d
	}
	// Blaser 2010: Mw 8 interface events are roughly 150–200 km long.
	d := ScalingLaw(8.0)
	if d.LengthKm < 100 || d.LengthKm > 250 {
		t.Fatalf("Mw 8 length = %v km", d.LengthKm)
	}
}

func TestMeanSlip(t *testing.T) {
	// Mw 8 over 150x70 km²: slip of a few meters.
	s, err := MeanSlip(8.0, 150*70)
	if err != nil {
		t.Fatal(err)
	}
	if s < 1 || s > 10 {
		t.Fatalf("Mw 8 mean slip = %v m", s)
	}
	if _, err := MeanSlip(8, 0); err == nil {
		t.Fatal("zero area accepted")
	}
}

func TestRiseTime(t *testing.T) {
	if RiseTime(0) != 1 {
		t.Fatal("zero slip should floor rise time at 1 s")
	}
	if RiseTime(8) <= RiseTime(1) {
		t.Fatal("rise time should grow with slip")
	}
}

func TestRuptureVelocitySlowsShallow(t *testing.T) {
	if !(RuptureVelocity(5) < RuptureVelocity(15) && RuptureVelocity(15) < RuptureVelocity(40)) {
		t.Fatal("rupture velocity should increase with depth")
	}
}

func TestDistanceMatricesProperties(t *testing.T) {
	f, stations, d := smallSetup(t, 5)
	n := f.NumSubfaults()
	if err := d.Validate(n, len(stations)); err != nil {
		t.Fatal(err)
	}
	// Symmetric with zero diagonal.
	for i := 0; i < n; i += 7 {
		if d.Subfault.At(i, i) != 0 {
			t.Fatal("nonzero diagonal")
		}
		for j := 0; j < n; j += 11 {
			if d.Subfault.At(i, j) != d.Subfault.At(j, i) {
				t.Fatal("asymmetric subfault distances")
			}
			if i != j && d.Subfault.At(i, j) <= 0 {
				t.Fatal("non-positive off-diagonal distance")
			}
		}
	}
}

func TestDistanceMatricesSaveLoad(t *testing.T) {
	_, _, d := smallSetup(t, 3)
	dir := t.TempDir()
	if err := d.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDistanceMatrices(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Subfault.Rows != d.Subfault.Rows || got.Station.Rows != d.Station.Rows {
		t.Fatal("shapes changed through save/load")
	}
	for i := range d.Subfault.Data {
		if got.Subfault.Data[i] != d.Subfault.Data[i] {
			t.Fatal("subfault matrix changed through save/load")
		}
	}
}

func TestLoadDistanceMatricesMissing(t *testing.T) {
	_, err := LoadDistanceMatrices(t.TempDir())
	if err == nil {
		t.Fatal("missing files accepted")
	}
	if !os.IsNotExist(err) {
		t.Fatalf("err = %v, want IsNotExist", err)
	}
}

func TestValidateShapeMismatch(t *testing.T) {
	_, _, d := smallSetup(t, 3)
	if err := d.Validate(d.Subfault.Rows+1, 3); err == nil {
		t.Fatal("wrong subfault count accepted")
	}
	if err := d.Validate(d.Subfault.Rows, 4); err == nil {
		t.Fatal("wrong station count accepted")
	}
}

func TestGenerateRupture(t *testing.T) {
	f, _, d := smallSetup(t, 2)
	g, err := NewGenerator(f, d)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(1)
	r, err := g.GenerateMw("run000001", 8.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "run000001" || r.TargetMw != 8.0 {
		t.Fatal("rupture metadata wrong")
	}
	if len(r.Patch) == 0 || len(r.Patch) != len(r.SlipM) {
		t.Fatal("patch arrays inconsistent")
	}
	// Moment rescaling must hit the target magnitude closely.
	if math.Abs(r.ActualMw-8.0) > 0.02 {
		t.Fatalf("actual Mw %v, want ≈8.0", r.ActualMw)
	}
	for _, s := range r.SlipM {
		if s < 0 || math.IsNaN(s) {
			t.Fatalf("bad slip %v", s)
		}
	}
	for _, o := range r.OnsetS {
		if o < 0 {
			t.Fatalf("negative onset %v", o)
		}
	}
	if r.Duration() <= 0 {
		t.Fatal("non-positive rupture duration")
	}
	if r.MaxSlip() <= 0 {
		t.Fatal("non-positive max slip")
	}
}

func TestGenerateMagnitudeRange(t *testing.T) {
	f, _, d := smallSetup(t, 2)
	g, _ := NewGenerator(f, d)
	g.MinMw, g.MaxMw = 7.8, 8.6
	rng := sim.NewRNG(7)
	for i := 0; i < 10; i++ {
		r, err := g.Generate("r", rng)
		if err != nil {
			t.Fatal(err)
		}
		if r.TargetMw < 7.8 || r.TargetMw >= 8.6 {
			t.Fatalf("target Mw %v outside configured range", r.TargetMw)
		}
	}
}

func TestGenerateRejectsAbsurdMw(t *testing.T) {
	f, _, d := smallSetup(t, 2)
	g, _ := NewGenerator(f, d)
	rng := sim.NewRNG(1)
	if _, err := g.GenerateMw("x", 5.0, rng); err == nil {
		t.Fatal("Mw 5 accepted")
	}
	if _, err := g.GenerateMw("x", 10.0, rng); err == nil {
		t.Fatal("Mw 10 accepted")
	}
}

func TestGenerateDeterministicForSeed(t *testing.T) {
	f, _, d := smallSetup(t, 2)
	g, _ := NewGenerator(f, d)
	r1, err := g.GenerateMw("a", 8.2, sim.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := g.GenerateMw("a", 8.2, sim.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Hypocenter != r2.Hypocenter || len(r1.Patch) != len(r2.Patch) {
		t.Fatal("same seed, different rupture")
	}
	for i := range r1.SlipM {
		if r1.SlipM[i] != r2.SlipM[i] {
			t.Fatal("same seed, different slip")
		}
	}
}

func TestPropertyRuptureMomentMatchesTarget(t *testing.T) {
	f, _, d := smallSetup(t, 2)
	g, _ := NewGenerator(f, d)
	rng := sim.NewRNG(5)
	fn := func(seed uint64, mwRaw uint8) bool {
		mw := 7.6 + float64(mwRaw%14)/10 // 7.6..8.9
		r, err := g.GenerateMw("p", mw, rng.Split(seed))
		if err != nil {
			return false
		}
		return math.Abs(r.ActualMw-mw) < 0.02
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestKernelString(t *testing.T) {
	if Exponential.String() != "exponential" || Gaussian.String() != "gaussian" ||
		VonKarmanApprox.String() != "vonKarman" {
		t.Fatal("kernel names wrong")
	}
	if Kernel(99).String() == "" {
		t.Fatal("unknown kernel should still format")
	}
}

func TestKernelValuesDecay(t *testing.T) {
	for _, k := range []Kernel{Exponential, Gaussian, VonKarmanApprox} {
		if k.value(0) < 0.999 {
			t.Fatalf("%v kernel at 0 = %v, want 1", k, k.value(0))
		}
		if !(k.value(0.5) > k.value(1) && k.value(1) > k.value(3)) {
			t.Fatalf("%v kernel not decaying", k)
		}
	}
}

func TestGreensFunctionsShape(t *testing.T) {
	f, stations, d := smallSetup(t, 3)
	gf, err := ComputeGreens(f, stations, d, GFConfig{Dt: 1, Nsamples: 64, VpKmS: 6.8, VsKmS: 3.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(gf.Kernel) != 3 {
		t.Fatalf("station dim %d", len(gf.Kernel))
	}
	if len(gf.Kernel[0]) != f.NumSubfaults() {
		t.Fatalf("subfault dim %d", len(gf.Kernel[0]))
	}
	if len(gf.Kernel[0][0][0]) != 64 {
		t.Fatalf("sample dim %d", len(gf.Kernel[0][0][0]))
	}
}

func TestGreensStaticOffsetPersists(t *testing.T) {
	f, stations, d := smallSetup(t, 1)
	gf, err := ComputeGreens(f, stations, d, GFConfig{Dt: 1, Nsamples: 256, VpKmS: 6.8, VsKmS: 3.9})
	if err != nil {
		t.Fatal(err)
	}
	// The vertical kernel should settle at a nonzero static level.
	k := gf.Kernel[0][0][2]
	tail := k[len(k)-1]
	if tail == 0 {
		t.Fatal("no static offset in GF tail")
	}
	if math.Abs(k[len(k)-2]-tail) > math.Abs(tail)*0.05 {
		t.Fatal("GF tail not settled")
	}
}

func TestGreensCloserStationLargerAmplitude(t *testing.T) {
	f := smallFault(t)
	near := geom.Station{Name: "NEAR", Pos: f.Subfaults[0].Center}
	far := geom.Station{Name: "FARR", Pos: geom.LatLon{Lat: -20, Lon: -69}}
	stations := []geom.Station{near, far}
	d := ComputeDistanceMatrices(f, stations)
	gf, err := ComputeGreens(f, stations, d, GFConfig{Dt: 1, Nsamples: 128, VpKmS: 6.8, VsKmS: 3.9})
	if err != nil {
		t.Fatal(err)
	}
	amp := func(s int) float64 {
		var m float64
		for c := 0; c < 3; c++ {
			for _, v := range gf.Kernel[s][0][c] {
				if a := math.Abs(v); a > m {
					m = a
				}
			}
		}
		return m
	}
	if amp(0) <= amp(1) {
		t.Fatalf("near station amplitude %v <= far %v", amp(0), amp(1))
	}
}

func TestGFConfigValidate(t *testing.T) {
	bad := []GFConfig{
		{Dt: 0, Nsamples: 10, VpKmS: 6, VsKmS: 3},
		{Dt: 1, Nsamples: 0, VpKmS: 6, VsKmS: 3},
		{Dt: 1, Nsamples: 10, VpKmS: 3, VsKmS: 3},
		{Dt: 1, Nsamples: 10, VpKmS: 6, VsKmS: 0},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
	if err := DefaultGFConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGreensToRecords(t *testing.T) {
	f, stations, d := smallSetup(t, 2)
	gf, err := ComputeGreens(f, stations, d, GFConfig{Dt: 1, Nsamples: 32, VpKmS: 6.8, VsKmS: 3.9})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := gf.ToRecords(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2*3 {
		t.Fatalf("got %d records, want 6", len(recs))
	}
	if _, err := gf.ToRecords(-1); err == nil {
		t.Fatal("negative subfault accepted")
	}
	size, err := gf.EncodedSizeBytes()
	if err != nil {
		t.Fatal(err)
	}
	if size <= 0 {
		t.Fatal("non-positive encoded size")
	}
}

func TestSynthesizeWaveforms(t *testing.T) {
	f, stations, d := smallSetup(t, 2)
	g, _ := NewGenerator(f, d)
	rng := sim.NewRNG(3)
	r, err := g.GenerateMw("run0", 8.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	gf, err := ComputeGreens(f, stations, d, GFConfig{Dt: 1, Nsamples: 128, VpKmS: 6.8, VsKmS: 3.9})
	if err != nil {
		t.Fatal(err)
	}
	wfs, err := SynthesizeWaveforms(r, gf, NoiseConfig{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(wfs) != 2 {
		t.Fatalf("got %d waveforms, want 2", len(wfs))
	}
	for _, w := range wfs {
		if w.PGD() <= 0 {
			t.Fatalf("station %s PGD = %v, want > 0", w.Station, w.PGD())
		}
		recs := w.ToRecords()
		if len(recs) != 3 {
			t.Fatal("waveform should make 3 records")
		}
	}
}

func TestSynthesizeNoiseAddsVariance(t *testing.T) {
	f, stations, d := smallSetup(t, 1)
	g, _ := NewGenerator(f, d)
	r, err := g.GenerateMw("run0", 7.8, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	gf, err := ComputeGreens(f, stations, d, GFConfig{Dt: 1, Nsamples: 64, VpKmS: 6.8, VsKmS: 3.9})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := SynthesizeWaveforms(r, gf, NoiseConfig{}, sim.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := SynthesizeWaveforms(r, gf, DefaultNoise(), sim.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	diff := 0.0
	for t0 := range clean[0].ENZ[0] {
		diff += math.Abs(noisy[0].ENZ[0][t0] - clean[0].ENZ[0][t0])
	}
	if diff == 0 {
		t.Fatal("noise had no effect")
	}
}

func TestSynthesizeValidation(t *testing.T) {
	f, stations, d := smallSetup(t, 1)
	gf, _ := ComputeGreens(f, stations, d, GFConfig{Dt: 1, Nsamples: 16, VpKmS: 6.8, VsKmS: 3.9})
	rng := sim.NewRNG(1)
	if _, err := SynthesizeWaveforms(nil, gf, NoiseConfig{}, rng); err == nil {
		t.Fatal("nil rupture accepted")
	}
	bad := &Rupture{Patch: []int{0, 1}, SlipM: []float64{1}, OnsetS: []float64{0, 0}, RiseS: []float64{1, 1}}
	if _, err := SynthesizeWaveforms(bad, gf, NoiseConfig{}, rng); err == nil {
		t.Fatal("inconsistent rupture accepted")
	}
	oob := &Rupture{Patch: []int{gf.NSub + 5}, SlipM: []float64{1}, OnsetS: []float64{0}, RiseS: []float64{1}}
	if _, err := SynthesizeWaveforms(oob, gf, NoiseConfig{}, rng); err == nil {
		t.Fatal("out-of-bounds patch accepted")
	}
}

func TestNewGeneratorValidation(t *testing.T) {
	f, _, d := smallSetup(t, 2)
	if _, err := NewGenerator(nil, d); err == nil {
		t.Fatal("nil fault accepted")
	}
	if _, err := NewGenerator(f, nil); err == nil {
		t.Fatal("nil distances accepted")
	}
}

func TestCorrelationLengthsGrowWithMagnitude(t *testing.T) {
	a1, d1 := CorrelationLengths(7.5)
	a2, d2 := CorrelationLengths(9.0)
	if a2 <= a1 || d2 <= d1 {
		t.Fatal("correlation lengths should grow with Mw")
	}
}

func TestSynthesisDeterministicUnderParallelism(t *testing.T) {
	// The station fan-out must not change results run to run: RNG
	// streams are split per station before goroutines spawn.
	f, stations, d := smallSetup(t, 4)
	g, _ := NewGenerator(f, d)
	r, err := g.GenerateMw("par", 8.0, sim.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	gf, err := ComputeGreens(f, stations, d, GFConfig{Dt: 1, Nsamples: 64, VpKmS: 6.8, VsKmS: 3.9})
	if err != nil {
		t.Fatal(err)
	}
	a, err := SynthesizeWaveforms(r, gf, DefaultNoise(), sim.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SynthesizeWaveforms(r, gf, DefaultNoise(), sim.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	for s := range a {
		for c := 0; c < 3; c++ {
			for i := range a[s].ENZ[c] {
				if a[s].ENZ[c][i] != b[s].ENZ[c][i] {
					t.Fatalf("station %d comp %d sample %d differs across runs", s, c, i)
				}
			}
		}
	}
}

func BenchmarkComputeGreensParallel(b *testing.B) {
	f, stations, d := smallSetup(b, 8)
	cfg := GFConfig{Dt: 1, Nsamples: 256, VpKmS: 6.8, VsKmS: 3.9}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ComputeGreens(f, stations, d, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistanceMatrices(b *testing.B) {
	f := smallFault(b)
	stations := geom.FullChileanStations()[:8]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeDistanceMatrices(f, stations)
	}
}

func BenchmarkGenerateRupture(b *testing.B) {
	f, _, d := smallSetup(b, 2)
	g, _ := NewGenerator(f, d)
	rng := sim.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.GenerateMw("bench", 8.2, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// TestGreensEdgeCases pins satellite 3: ToRecords and EncodedSizeBytes
// follow the linalg convention — data-shaped problems are errors, never
// panics, and empty station/subfault sets are valid degenerate inputs.
func TestGreensEdgeCases(t *testing.T) {
	f, stations, d := smallSetup(t, 2)
	cfg := GFConfig{Dt: 1, Nsamples: 16, VpKmS: 6.8, VsKmS: 3.9}
	good, err := ComputeGreens(f, stations, d, cfg)
	if err != nil {
		t.Fatal(err)
	}

	truncKernel := &GreensFunctions{Cfg: cfg, Stations: stations, NSub: good.NSub,
		Kernel: good.Kernel[:1]} // one station's rows missing
	shortStation := &GreensFunctions{Cfg: cfg, Stations: stations, NSub: good.NSub,
		Kernel: [][][3][]float64{good.Kernel[0], good.Kernel[1][:good.NSub-1]}}
	empty := &GreensFunctions{Cfg: cfg}

	cases := []struct {
		name     string
		g        *GreensFunctions
		subfault int
		wantErr  bool
	}{
		{"valid", good, 0, false},
		{"last subfault", good, good.NSub - 1, false},
		{"negative subfault", good, -1, true},
		{"subfault == NSub", good, good.NSub, true},
		{"subfault beyond", good, good.NSub + 7, true},
		{"kernel missing a station", truncKernel, 0, true},
		{"station kernel short a subfault", shortStation, 0, true},
		{"empty set, subfault 0", empty, 0, true}, // 0 out of 0 subfaults
	}
	for _, tc := range cases {
		recs, err := tc.g.ToRecords(tc.subfault)
		if tc.wantErr {
			if err == nil {
				t.Errorf("%s: ToRecords returned no error", tc.name)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: ToRecords: %v", tc.name, err)
			continue
		}
		if len(recs) != len(tc.g.Stations)*3 {
			t.Errorf("%s: %d records, want %d", tc.name, len(recs), len(tc.g.Stations)*3)
		}
	}

	// An empty station list is the valid degenerate case: zero records,
	// zero bytes, no errors.
	noStations := &GreensFunctions{Cfg: cfg, NSub: 2,
		Kernel: [][][3][]float64{}}
	recs, err := noStations.ToRecords(1)
	if err != nil || len(recs) != 0 {
		t.Fatalf("empty stations: recs=%d err=%v, want 0 records no error", len(recs), err)
	}
	// Per-subfault container overhead remains; the point is no error
	// and no payload.
	wantEmpty := int64(noStations.NSub) * mseed.EncodedSize(nil)
	if n, err := noStations.EncodedSizeBytes(); err != nil || n != wantEmpty {
		t.Fatalf("empty stations: size=%d err=%v, want %d header-only bytes no error", n, err, wantEmpty)
	}
	if n, err := empty.EncodedSizeBytes(); err != nil || n != 0 {
		t.Fatalf("zero-value set: size=%d err=%v, want 0 bytes no error", n, err)
	}

	// EncodedSizeBytes propagates malformed-kernel errors instead of
	// silently truncating the total (the pre-fix behaviour).
	if _, err := truncKernel.EncodedSizeBytes(); err == nil {
		t.Fatal("EncodedSizeBytes swallowed a malformed kernel")
	}
	if _, err := shortStation.EncodedSizeBytes(); err == nil {
		t.Fatal("EncodedSizeBytes swallowed a short station kernel")
	}
	negative := &GreensFunctions{Cfg: cfg, NSub: -1}
	if _, err := negative.EncodedSizeBytes(); err == nil {
		t.Fatal("EncodedSizeBytes accepted a negative subfault count")
	}
	if n, err := good.EncodedSizeBytes(); err != nil || n <= 0 {
		t.Fatalf("valid set: size=%d err=%v, want positive size no error", n, err)
	}
}
