#!/bin/sh
# Benchmark regression gate: for every BENCH_*.json baseline in the
# repo root, rerun that suite's benchmarks and compare ns/op against
# the recorded values. Absolute numbers vary wildly across hosts, so
# only a >TOLERANCE-fold slowdown on a benchmark the baseline knows
# about fails; new benchmarks and speedups are reported but never
# fatal. CI runs this as a separate advisory (non-required) job.
#
# Each baseline declares its own scope:
#
#	"bench_regex"  go test -bench pattern    (required per file)
#	"benchtime"    go test -benchtime value  (default $BENCHTIME)
#
# Environment knobs:
#
#	BASELINE    run a single baseline file only (default: all BENCH_*.json)
#	TOLERANCE   allowed slowdown               (default 2.0)
#	BENCHTIME   fallback go test -benchtime    (default 2x)
#	RECORD_DIR  also write this run's numbers as fresh BENCH_*.json
#	            files under this directory (CI uploads them as
#	            artifacts so the bench trajectory is inspectable)
set -eu

cd "$(dirname "$0")/.." || exit 1

TOLERANCE=${TOLERANCE:-2.0}
BENCHTIME=${BENCHTIME:-2x}

# json_str FILE KEY prints the string value of a top-level "KEY" field.
json_str() {
	sed -n 's/.*"'"$2"'"[ \t]*:[ \t]*"\([^"]*\)".*/\1/p' "$1" | head -n 1
}

# compare BASELINE OUTPUT prints the per-suite summary and returns
# non-zero when any known benchmark regressed beyond TOLERANCE.
compare() {
	awk -v tol="$TOLERANCE" -v baseline="$1" '
		# Pass 1: the baseline JSON. ns_per_op entries look like
		#   "BenchmarkCholesky/serial/256": 2240650,
		# and benchmark names never appear elsewhere in the file.
		FNR == NR {
			if ($0 ~ /"Benchmark[^"]*":/) {
				name = $0
				sub(/^[ \t]*"/, "", name)
				sub(/".*$/, "", name)
				val = $0
				sub(/^[^:]*:[ \t]*/, "", val)
				sub(/,.*$/, "", val)
				base[name] = val + 0
			}
			next
		}
		# Pass 2: go test -bench output. Result lines carry the GOMAXPROCS
		# suffix (Benchmark.../256-4) and ns/op in the field before "ns/op".
		$1 ~ /^Benchmark/ {
			ns = -1
			for (i = 2; i <= NF; i++)
				if ($i == "ns/op") ns = $(i - 1) + 0
			if (ns < 0) next
			name = $1
			sub(/-[0-9]+$/, "", name)
			seen[name] = 1
			if (!(name in base)) {
				printf "  NEW       %-44s %14.0f ns/op (no baseline)\n", name, ns
				next
			}
			ratio = ns / base[name]
			verdict = "ok"
			if (ratio > tol) {
				verdict = "REGRESSED"
				failed++
			}
			printf "  %-9s %-44s %14.0f ns/op  baseline %14.0f  ratio %.2fx\n", \
				verdict, name, ns, base[name], ratio
		}
		END {
			# Baseline entries the run no longer produces (renamed or
			# deleted benchmarks) are reported but never fatal: the
			# baseline is a recorded artifact, not a contract.
			missing = 0
			for (n in base)
				if (!(n in seen)) {
					printf "  MISSING   %-44s baseline %14.0f ns/op (not produced by this run)\n", n, base[n] | "sort"
					missing++
				}
			close("sort")
			if (missing)
				printf "%s: %d baseline benchmark(s) missing from this run (advisory; update the file if renamed)\n", baseline, missing
			if (failed) {
				printf "%s: %d benchmark(s) regressed more than %.1fx\n", baseline, failed, tol
				exit 1
			}
			printf "%s: OK (no regression beyond %sx)\n", baseline, tol
		}
	' "$1" "$2"
}

# record REGEX BENCHTIME OUTPUT prints a fresh baseline JSON for this
# run, in the same shape compare() parses.
record() {
	awk -v regex="$1" -v bt="$2" '
		BEGIN {
			printf "{\n  \"bench_regex\": \"%s\",\n  \"benchtime\": \"%s\",\n  \"ns_per_op\": {", regex, bt
			n = 0
		}
		$1 ~ /^Benchmark/ {
			ns = -1
			for (i = 2; i <= NF; i++)
				if ($i == "ns/op") ns = $(i - 1) + 0
			if (ns < 0) next
			name = $1
			sub(/-[0-9]+$/, "", name)
			printf "%s\n    \"%s\": %.0f", n ? "," : "", name, ns
			n++
		}
		END { print "\n  }\n}" }
	' "$3"
}

baselines=${BASELINE:-}
if [ -z "$baselines" ]; then
	# Glob instead of ls: with no baselines the pattern stays literal
	# and the -f test below filters it out.
	for f in BENCH_*.json; do
		[ -f "$f" ] && baselines="$baselines $f"
	done
fi

# The comparison is advisory: no baselines (fresh checkout, pruned
# artifacts) means there is nothing to compare against, which is a
# pass, not a failure.
if [ -z "$baselines" ]; then
	echo "benchdiff: no BENCH_*.json baselines found; skipping comparison (advisory pass)"
	echo "benchdiff: record one with: go test -run '^\$' -bench <regex> -benchtime 5x . and write BENCH_<suite>.json"
	exit 0
fi

out=$(mktemp)
trap 'rm -f "$out"' EXIT
status=0

# shellcheck disable=SC2086 # word-splitting the space-separated list is the point
for b in $baselines; do
	if [ ! -f "$b" ]; then
		echo "benchdiff: baseline $b not found; skipping (advisory pass)"
		continue
	fi
	regex=$(json_str "$b" bench_regex)
	if [ -z "$regex" ]; then
		echo "benchdiff: $b has no bench_regex field; skipping (advisory pass)"
		continue
	fi
	bt=$(json_str "$b" benchtime)
	[ -n "$bt" ] || bt=$BENCHTIME
	echo "== $b: go test -bench '$regex' (benchtime $bt, tolerance ${TOLERANCE}x)"
	# No pipeline here: POSIX sh has no pipefail, so `go test | tee`
	# would report tee's status and mask a benchmark build/run failure.
	# Capture to a file, propagate go test's own status, then show it.
	if go test -run '^$' -bench "$regex" -benchtime "$bt" . >"$out" 2>&1; then
		cat "$out"
	else
		cat "$out"
		echo "benchdiff: go test -bench '$regex' failed" >&2
		exit 1
	fi
	echo
	compare "$b" "$out" || status=1
	if [ -n "${RECORD_DIR:-}" ]; then
		mkdir -p "$RECORD_DIR"
		record "$regex" "$bt" "$out" >"$RECORD_DIR/$b"
		echo "recorded this run's numbers to $RECORD_DIR/$b"
	fi
	echo
done

if [ "$status" -ne 0 ]; then
	echo "benchdiff: FAIL (at least one suite regressed beyond ${TOLERANCE}x)"
	exit 1
fi
echo "benchdiff: all suites OK"
