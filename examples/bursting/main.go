// Bursting: run a real FDW batch on the simulated OSG, extract its
// job-time trace (the paper's two-CSV input), then replay it under the
// three VDC bursting policies and compare against the pure-OSG
// control — a reduced Fig. 5/6.
//
//	go run ./examples/bursting
package main

import (
	"fmt"
	"log"
	"os"

	"fdw"
)

func main() {
	// 1. Produce a trace: one DAGMan making 1,000 full-input waveforms.
	env, err := fdw.NewEnv(31, fdw.DefaultPoolConfig())
	if err != nil {
		log.Fatal(err)
	}
	cfg := fdw.DefaultConfig()
	cfg.Name = "burst-demo"
	cfg.Waveforms = 1000
	cfg.Seed = 31
	w, err := fdw.NewWorkflow(cfg, env, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := fdw.RunBatch(env, []*fdw.Workflow{w}, 1000*3600); err != nil {
		log.Fatal(err)
	}
	batch, jobs, err := fdw.TraceFromWorkflow(w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: batch %q, %d jobs, %.2f h on OSG\n\n", batch.Name, len(jobs), batch.Duration()/3600)

	// 2. Control: replay with no policies.
	control, err := fdw.Burst(batch, jobs, fdw.DefaultBurstConfig())
	if err != nil {
		log.Fatal(err)
	}
	if err := control.Report(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	// 3. The paper's sweep dimensions, reduced: three probe times with
	// Policy 1 (threshold 34 JPM) + Policy 2 (90-minute queue cap), and
	// one Policy 3 (submission gap) run.
	for _, probe := range []float64{1, 10, 120} {
		bc := fdw.DefaultBurstConfig()
		bc.P1 = &fdw.BurstPolicy1{ProbeSecs: probe, ThresholdJPM: 34}
		bc.P2 = &fdw.BurstPolicy2{MaxQueueSecs: 90 * 60}
		res, err := fdw.Burst(batch, jobs, bc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("P1 probe %3.0fs + P2 90min: AIT %6.2f JPM (control %.2f), VDC %5.1f%%, bursted %4.1f%%, runtime %.2f h, cost $%.2f\n",
			probe, res.AvgInstantJPM, control.AvgInstantJPM, res.VDCActivePct,
			res.BurstedPct, res.RuntimeSecs/3600, res.CostUSD)
	}
	bc := fdw.DefaultBurstConfig()
	bc.P3 = &fdw.BurstPolicy3{MaxGapSecs: 30 * 60, ProbeSecs: 60}
	res, err := fdw.Burst(batch, jobs, bc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P3 gap 30min:              AIT %6.2f JPM, bursted %.1f%%, cost $%.2f\n",
		res.AvgInstantJPM, res.BurstedPct, res.CostUSD)
	fmt.Println("\nfaster probing raises average instant throughput and VDC usage; cost stays dollars-scale.")
}
