package lint

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/golden")

// fixtureLoader is shared across tests so `go list` runs once per
// fixture, not once per subtest rerun.
var fixtureLoader = &Loader{}

func loadFixture(t *testing.T, name string) []*Package {
	t.Helper()
	pkgs, err := fixtureLoader.Load("./testdata/src/" + name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			t.Errorf("fixture %s: type error: %v", name, terr)
		}
	}
	return pkgs
}

// runGolden analyzes one fixture package and compares the formatted
// diagnostics against testdata/golden/<fixture>.golden. A missing
// golden file means the fixture must be clean.
func runGolden(t *testing.T, fixture string, analyzers ...*Analyzer) {
	t.Helper()
	if len(analyzers) == 0 {
		analyzers = Analyzers()
	}
	diags := Run(loadFixture(t, fixture), analyzers)
	base, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, d := range diags {
		fmt.Fprintln(&buf, d.Format(base))
	}
	golden := filepath.Join("testdata", "golden", fixture+".golden")
	if *update {
		if buf.Len() == 0 {
			os.Remove(golden)
			return
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		if os.IsNotExist(err) {
			want = nil
		} else {
			t.Fatal(err)
		}
	}
	if got := buf.String(); got != string(want) {
		t.Errorf("fixture %s diagnostics mismatch (run go test -run %s -update to regenerate)\ngot:\n%swant:\n%s",
			fixture, t.Name(), got, want)
	}
}

func TestWallclockBad(t *testing.T)   { runGolden(t, "wallclock_bad", WallclockAnalyzer) }
func TestWallclockClean(t *testing.T) { runGolden(t, "wallclock_clean", WallclockAnalyzer) }
func TestWallclockAllow(t *testing.T) { runGolden(t, "wallclock_allow", WallclockAnalyzer) }

func TestGlobalrandBad(t *testing.T)   { runGolden(t, "globalrand_bad", GlobalrandAnalyzer) }
func TestGlobalrandClean(t *testing.T) { runGolden(t, "globalrand_clean", GlobalrandAnalyzer) }

func TestMaporderBad(t *testing.T)   { runGolden(t, "maporder_bad", MaporderAnalyzer) }
func TestMaporderClean(t *testing.T) { runGolden(t, "maporder_clean", MaporderAnalyzer) }

func TestObsflowBad(t *testing.T)   { runGolden(t, "obsflow_bad", ObsflowAnalyzer) }
func TestObsflowClean(t *testing.T) { runGolden(t, "obsflow_clean", ObsflowAnalyzer) }

func TestAtomicwriteBad(t *testing.T)   { runGolden(t, "atomicwrite_bad", AtomicwriteAnalyzer) }
func TestAtomicwriteClean(t *testing.T) { runGolden(t, "atomicwrite_clean", AtomicwriteAnalyzer) }

func TestSeamguardBad(t *testing.T)   { runGolden(t, "seamguard_bad", SeamguardAnalyzer) }
func TestSeamguardClean(t *testing.T) { runGolden(t, "seamguard_clean", SeamguardAnalyzer) }

func TestFloatorderBad(t *testing.T)   { runGolden(t, "floatorder_bad", FloatorderAnalyzer) }
func TestFloatorderClean(t *testing.T) { runGolden(t, "floatorder_clean", FloatorderAnalyzer) }

func TestErrdropBad(t *testing.T)   { runGolden(t, "errdrop_bad", ErrdropAnalyzer) }
func TestErrdropClean(t *testing.T) { runGolden(t, "errdrop_clean", ErrdropAnalyzer) }

// TestDirectiveDiagnostics runs the full suite so malformed, unknown,
// and unused //lint:allow directives all surface.
func TestDirectiveDiagnostics(t *testing.T) { runGolden(t, "directive_bad") }

// TestDirectiveNewAnalyzers pins //lint:allow behaviour against the
// durability analyzers: a reasoned suppression silences the line, a
// reason-less or wrong-analyzer directive leaves the real diagnostic
// standing, and directives with nothing to suppress surface as unused.
func TestDirectiveNewAnalyzers(t *testing.T) { runGolden(t, "directive_new") }

// TestRepoClean is the tree-wide invariant: the repository must lint
// clean under every analyzer, with all suppressions reasoned. This is
// the same run scripts/check.sh performs.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-repo lint in -short mode")
	}
	l := &Loader{Dir: "../.."}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("loading repo: %v", err)
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			t.Errorf("%s: type error: %v", p.ImportPath, terr)
		}
	}
	diags := Run(pkgs, Analyzers())
	for _, d := range diags {
		t.Errorf("%s", d.Format(""))
	}
}

// TestClockFuncCoverage pins the forbidden set: if a future Go release
// adds clock functions, this test reminds us to revisit the list.
func TestClockFuncCoverage(t *testing.T) {
	for _, name := range []string{"Now", "Since", "Until", "Sleep", "Tick", "NewTicker", "NewTimer", "After", "AfterFunc"} {
		if !wallclockForbidden[name] {
			t.Errorf("time.%s missing from wallclockForbidden", name)
		}
	}
}
