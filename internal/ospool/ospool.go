// Package ospool models the Open Science Pool: an opportunistic,
// glidein-based HTC pool shared by many submitters. The model captures
// the dynamics the paper's experiments hinge on — gradual glidein
// ramp-up, fluctuating opportunistic capacity, pilot lifetimes and
// preemption, a periodic fair-share negotiation cycle with a bounded
// match rate, and Stash-cache input delivery — so that throughput
// scaling, wait-time growth under concurrent DAGMans, and erratic
// running-job footprints emerge rather than being scripted.
//
// The pool is engineered for OSPool magnitude (10⁵ glideins, 10⁶
// jobs): matchmaking runs over per-site free-slot heaps plus a
// requirements-signature match cache instead of scanning every
// glidein per job (see DESIGN.md §12), and all hot-path state —
// fair-share usage, busy counts, claim lookup — is maintained
// incrementally rather than rebuilt per cycle. The indexed negotiator
// provably reproduces the seed linear scan match-for-match;
// negotiate_ref.go retains that linear scan as the executable
// specification, and TestIndexedNegotiatorMatchesReference checks the
// equivalence property.
package ospool

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"fdw/internal/classad"
	"fdw/internal/htcondor"
	"fdw/internal/obs"
	"fdw/internal/sim"
	"fdw/internal/stash"
)

// SiteConfig describes one contributing site.
type SiteConfig struct {
	Name     string
	MaxSlots int     // peak concurrent glideins this site can host
	Speed    float64 // mean execution-time multiplier (1.0 = reference)
	SpeedSD  float64 // per-glidein speed variation
	CpusPer  int     // cores per slot
	MemoryMB int     // memory per slot
}

// Config parameterizes the pool.
type Config struct {
	Sites []SiteConfig

	NegotiationInterval sim.Time // negotiator cycle period
	ProvisionInterval   sim.Time // glidein factory period
	MatchesPerCycle     int      // claim limit per negotiation cycle

	GlideinRampMean     sim.Time // mean pilot provisioning delay
	GlideinLifetimeMean sim.Time // mean pilot lifetime
	GlideinIdleTimeout  sim.Time // idle pilots retire after this long

	// Opportunistic availability fluctuates between AvailabilityMin and
	// 1.0 with the given period (other users' demand ebbs and flows).
	AvailabilityPeriod sim.Time
	AvailabilityMin    float64

	// ExecJitterSigma is the lognormal sigma applied to execution times.
	ExecJitterSigma float64

	// FailureProb is the per-execution probability that a job exits
	// non-zero (node black holes, transfer failures): fault injection
	// for DAGMan's RETRY machinery. Zero disables failures.
	FailureProb float64
}

// DefaultConfig yields an OSPool-scale setup calibrated for the paper's
// experiments: several hundred reachable slots at peak, minutes-scale
// glidein ramp, hours-scale pilot lifetimes, a 30-second negotiator.
func DefaultConfig() Config {
	sites := []SiteConfig{
		{Name: "uchicago", MaxSlots: 130, Speed: 1.00, SpeedSD: 0.08, CpusPer: 4, MemoryMB: 16384},
		{Name: "sdsc", MaxSlots: 90, Speed: 0.92, SpeedSD: 0.10, CpusPer: 4, MemoryMB: 16384},
		{Name: "unl", MaxSlots: 70, Speed: 1.05, SpeedSD: 0.10, CpusPer: 4, MemoryMB: 16384},
		{Name: "syracuse", MaxSlots: 60, Speed: 1.12, SpeedSD: 0.12, CpusPer: 4, MemoryMB: 16384},
		{Name: "ucsd", MaxSlots: 50, Speed: 0.95, SpeedSD: 0.08, CpusPer: 4, MemoryMB: 16384},
		{Name: "wisc", MaxSlots: 60, Speed: 1.00, SpeedSD: 0.10, CpusPer: 4, MemoryMB: 16384},
	}
	return Config{
		Sites:               sites,
		NegotiationInterval: 30,
		ProvisionInterval:   60,
		MatchesPerCycle:     120,
		GlideinRampMean:     420,
		GlideinLifetimeMean: 6 * 3600,
		GlideinIdleTimeout:  900,
		AvailabilityPeriod:  4 * 3600,
		AvailabilityMin:     0.45,
		ExecJitterSigma:     0.18,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if len(c.Sites) == 0 {
		return fmt.Errorf("ospool: no sites")
	}
	for _, s := range c.Sites {
		if s.MaxSlots <= 0 || s.Speed <= 0 {
			return fmt.Errorf("ospool: site %q has invalid slots/speed", s.Name)
		}
	}
	if c.NegotiationInterval <= 0 || c.ProvisionInterval <= 0 {
		return fmt.Errorf("ospool: non-positive intervals")
	}
	if c.MatchesPerCycle <= 0 {
		return fmt.Errorf("ospool: non-positive MatchesPerCycle")
	}
	if c.AvailabilityMin <= 0 || c.AvailabilityMin > 1 {
		return fmt.Errorf("ospool: AvailabilityMin %v outside (0,1]", c.AvailabilityMin)
	}
	if c.FailureProb < 0 || c.FailureProb >= 1 {
		return fmt.Errorf("ospool: FailureProb %v outside [0,1)", c.FailureProb)
	}
	return nil
}

// TotalSlots returns the sum of site capacities.
func (c Config) TotalSlots() int {
	n := 0
	for _, s := range c.Sites {
		n += s.MaxSlots
	}
	return n
}

// glidein is one pilot slot. Ids are allocated in arrival order and
// never reused, so "ascending id" is exactly the seed negotiator's
// scan order — the invariant the per-site free heaps preserve.
type glidein struct {
	id       int
	site     *SiteConfig
	siteIdx  int // index into Pool.sites
	speed    float64
	host     string // "glidein-<id>.<site>", built once
	ad       classad.Ad
	job      *htcondor.Job
	schedd   *htcondor.Schedd
	expire   sim.Time
	idleAt   sim.Time
	retired  bool
	heapIdx  int        // position in its site's free heap; -1 when busy
	done     *sim.Event // pending completion event for the running job
	expireEv *sim.Event // scheduled lifetime-expiry event
}

// siteState is the per-site shard of the matchmaking index: the shared
// machine ad (glidein ads are identical within a site — speed is not
// advertised) and the min-heap of free glideins keyed by id.
type siteState struct {
	cfg       *SiteConfig
	ad        classad.Ad
	free      freeHeap
	liveCount int // glideins at this site, idle + busy
}

// ExecFault describes an injected outcome for one execution attempt,
// returned by the pool's ExecFault hook. The zero value means "run
// normally".
type ExecFault struct {
	// Fail makes the job exit non-zero after its normal runtime
	// (application-level failure).
	Fail bool
	// BlackHole makes the job exit non-zero after a short constant
	// runtime — the node-black-hole pathology, where a broken slot
	// churns through jobs far faster than healthy ones finish them.
	BlackHole bool
	// TransferFail aborts the attempt when the input transfer completes:
	// the job exits non-zero having done no work.
	TransferFail bool
}

// blackHoleExecSeconds is how quickly a black-hole slot fails a job.
const blackHoleExecSeconds = 30

// AttemptOutcome classifies how one execution attempt ended, for the
// recovery layer's failure accounting.
type AttemptOutcome int

// Attempt outcomes reported to the RecoveryHook.
const (
	AttemptOK        AttemptOutcome = iota
	AttemptFailed                   // exited non-zero (exec fault, black hole, transfer fail)
	AttemptDeadline                 // evicted by the recovery layer's wall-clock deadline
	AttemptPreempted                // glidein lifetime/drain preemption
)

func (o AttemptOutcome) String() string {
	switch o {
	case AttemptOK:
		return "ok"
	case AttemptFailed:
		return "failed"
	case AttemptDeadline:
		return "deadline"
	case AttemptPreempted:
		return "preempted"
	default:
		return fmt.Sprintf("AttemptOutcome(%d)", int(o))
	}
}

// RecoveryHook is the narrow seam the adaptive recovery layer
// (internal/recovery) plugs into the pool, mirroring SetSiteDown: the
// pool consults it at decision points and reports every attempt outcome
// back to it. A nil hook disables all recovery behaviour and leaves the
// pool byte-identical to the pre-hook code. Implementations must draw
// any randomness from their own split sim.RNG stream.
type RecoveryHook interface {
	// VetoMatch reports whether matchmaking at site is currently vetoed
	// (an open circuit breaker). Vetoed slots are skipped in the
	// negotiator's scan; the job stays idle and renegotiates later.
	VetoMatch(site string, now sim.Time) bool
	// JobDeadlineSeconds returns the wall-clock budget for one attempt
	// of j (transfer + execution). Non-positive means unlimited. An
	// attempt exceeding its budget is evicted back to the queue.
	JobDeadlineSeconds(j *htcondor.Job, now sim.Time) float64
	// AttemptStarted fires when a claim begins executing j at site.
	AttemptStarted(site string, j *htcondor.Job, now sim.Time)
	// AttemptEnded fires when the attempt leaves its slot; ranSeconds is
	// how long the slot was held.
	AttemptEnded(site string, j *htcondor.Job, outcome AttemptOutcome, ranSeconds float64, now sim.Time)
	// OpenBreakers lists sites whose breakers are open (sorted), for the
	// pool's horizon-timeout diagnostics.
	OpenBreakers(now sim.Time) []string
}

// Pool is the simulated OSPool.
type Pool struct {
	kernel *sim.Kernel
	rng    *sim.RNG
	cfg    Config
	cache  *stash.Cache

	// Fault-injection hooks (internal/faults). Both are optional and
	// consulted at decision points only; they must draw any randomness
	// from their own split sim.RNG stream, so attaching them never
	// perturbs the pool's baseline variate sequence.
	siteDown  func(site string, now sim.Time) bool
	execFault func(site string, j *htcondor.Job, now sim.Time) ExecFault

	// recovery, if set, is the adaptive recovery layer's seam (see
	// RecoveryHook). Like the fault hooks it is consulted at decision
	// points only and must not perturb the pool's variate sequence.
	recovery RecoveryHook

	schedds []*htcondor.Schedd

	// Live-slot state, maintained incrementally at every transition
	// instead of recomputed per cycle.
	sites     []siteState
	live      map[int]*glidein           // every live glidein by id
	byJob     map[*htcondor.Job]*glidein // running job -> its slot
	busy      int                        // glideins with a running job
	freeCount int                        // idle glideins across all sites

	// ownerRunning tracks running jobs per owner — the fair-share usage
	// the negotiator seeds each cycle with (the seed code recounted it
	// by scanning every glidein per cycle).
	ownerRunning map[string]int

	// Matchmaking cache: job -> per-site match mask, deduplicated via a
	// requirements signature so the ClassAd machinery runs once per
	// distinct (resources, requirements, referenced-attrs) combination
	// rather than once per job × site. See matchindex.go.
	maskByJob map[*htcondor.Job][]bool
	maskBySig map[string][]bool
	reqAttrs  map[string][]string
	cands     []siteCand // scratch for findSlot's site walk

	pending int // glideins requested but not yet arrived
	nextID  int
	stopped bool

	phase0 float64 // availability phase offset

	stopFns []func()

	// useReference switches negotiate to the retained seed linear-scan
	// implementation (negotiate_ref.go); traceMatch, if set, observes
	// every successful claim. Both exist for the equivalence property
	// test.
	useReference bool
	traceMatch   func(j *htcondor.Job, g *glidein)

	// counters
	started   int
	completed int
	evictions int

	// wastedSeconds accumulates slot time that produced no completed
	// work: failed attempts, preemptions, deadline evictions, and
	// cancelled claims. Recovery A/B reporting reads it; nothing in the
	// pool's own scheduling ever does.
	wastedSeconds float64

	obs *obs.Registry
	met poolMetrics
}

// poolMetrics holds pre-resolved instrument handles (per-site slices
// are parallel to Pool.sites) so hot paths skip the registry's
// name+label key assembly. Populated by SetObs.
type poolMetrics struct {
	slotsLive    *obs.Gauge
	slotsBusy    *obs.Gauge
	pendingSlots *obs.Gauge
	capacity     *obs.Gauge
	cycles       *obs.Counter
	matches      *obs.Counter
	retireExpire *obs.Counter
	retireIdle   *obs.Counter
	jobRetries   *obs.Counter
	transferIn   *obs.Histogram
	requested    []*obs.Counter
	arrived      []*obs.Counter
	lost         []*obs.Counter
	preempted    []*obs.Counter
	deadline     []*obs.Counter
	cancelled    []*obs.Counter
}

// New creates a pool bound to a kernel. cache may be nil (transfers
// then cost nothing).
func New(k *sim.Kernel, cfg Config, cache *stash.Cache) (*Pool, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := k.RNG().Split(0x056001)
	p := &Pool{
		kernel:       k,
		rng:          rng,
		cfg:          cfg,
		cache:        cache,
		phase0:       rng.Uniform(0, 2*math.Pi),
		live:         map[int]*glidein{},
		byJob:        map[*htcondor.Job]*glidein{},
		ownerRunning: map[string]int{},
		maskByJob:    map[*htcondor.Job][]bool{},
		maskBySig:    map[string][]bool{},
		reqAttrs:     map[string][]string{},
	}
	p.sites = make([]siteState, len(p.cfg.Sites))
	for i := range p.cfg.Sites {
		s := &p.cfg.Sites[i]
		p.sites[i] = siteState{
			cfg: s,
			// One machine ad per site: glideins advertise only
			// site-level attributes, so every pilot at a site shares it.
			ad: classad.Ad{
				"Cpus":           classad.Number(float64(s.CpusPer)),
				"Memory":         classad.Number(float64(s.MemoryMB)),
				"HasSingularity": classad.Bool(true),
				"GLIDEIN_Site":   classad.String(s.Name),
			},
		}
	}
	return p, nil
}

// AddSchedd registers a submitter with the pool.
func (p *Pool) AddSchedd(s *htcondor.Schedd) { p.schedds = append(p.schedds, s) }

// SetObs attaches a metrics registry (nil disables instrumentation).
// The registry only records pool dynamics — provisioning, matching, and
// preemption decisions never read from it. Instrument handles are
// resolved here, once, rather than per event.
func (p *Pool) SetObs(r *obs.Registry) {
	p.obs = r
	if r == nil {
		p.met = poolMetrics{}
		return
	}
	m := poolMetrics{
		slotsLive:    r.Gauge("fdw_ospool_slots_live"),
		slotsBusy:    r.Gauge("fdw_ospool_slots_busy"),
		pendingSlots: r.Gauge("fdw_ospool_glideins_pending"),
		capacity:     r.Gauge("fdw_ospool_capacity_slots"),
		cycles:       r.Counter("fdw_ospool_negotiation_cycles_total"),
		matches:      r.Counter("fdw_ospool_matches_total"),
		retireExpire: r.Counter("fdw_ospool_glideins_retired_total", "reason", "expired"),
		retireIdle:   r.Counter("fdw_ospool_glideins_retired_total", "reason", "idle"),
		jobRetries:   r.Counter("fdw_ospool_job_retries_total"),
		transferIn:   r.Histogram("fdw_ospool_transfer_in_seconds"),
	}
	for i := range p.sites {
		name := p.sites[i].cfg.Name
		m.requested = append(m.requested, r.Counter("fdw_ospool_glideins_requested_total", "site", name))
		m.arrived = append(m.arrived, r.Counter("fdw_ospool_glideins_arrived_total", "site", name))
		m.lost = append(m.lost, r.Counter("fdw_ospool_glideins_lost_total", "site", name))
		m.preempted = append(m.preempted, r.Counter("fdw_ospool_preemptions_total", "site", name))
		m.deadline = append(m.deadline, r.Counter("fdw_ospool_deadline_evictions_total", "site", name))
		m.cancelled = append(m.cancelled, r.Counter("fdw_ospool_claims_cancelled_total", "site", name))
	}
	p.met = m
}

// Obs returns the attached registry (nil when observability is off).
func (p *Pool) Obs() *obs.Registry { return p.obs }

// SetSiteDown installs the site-outage hook: while fn reports a site
// down, the factory provisions no glideins there and pilots arriving
// from in-flight requests are discarded. nil clears the hook.
func (p *Pool) SetSiteDown(fn func(site string, now sim.Time) bool) { p.siteDown = fn }

// SetExecFault installs the per-execution fault hook, consulted once
// per claim after the pool's own FailureProb draw. nil clears the hook.
func (p *Pool) SetExecFault(fn func(site string, j *htcondor.Job, now sim.Time) ExecFault) {
	p.execFault = fn
}

// SetRecovery installs the adaptive recovery hook (internal/recovery).
// nil clears it, restoring the exact baseline behaviour.
func (p *Pool) SetRecovery(h RecoveryHook) { p.recovery = h }

// addFree returns g to its site's free heap.
func (p *Pool) addFree(g *glidein) {
	heap.Push(&p.sites[g.siteIdx].free, g)
	p.freeCount++
}

// removeFree takes g out of its site's free heap.
func (p *Pool) removeFree(g *glidein) {
	heap.Remove(&p.sites[g.siteIdx].free, g.heapIdx)
	g.heapIdx = -1
	p.freeCount--
}

// release unbinds g's running job, restoring g to its site's free heap
// unless the glidein is already retired.
func (p *Pool) release(g *glidein) {
	job := g.job
	delete(p.byJob, job)
	g.job, g.schedd = nil, nil
	p.busy--
	if n := p.ownerRunning[job.Owner] - 1; n > 0 {
		p.ownerRunning[job.Owner] = n
	} else {
		delete(p.ownerRunning, job.Owner)
	}
	g.idleAt = p.kernel.Now()
	if !g.retired {
		p.addFree(g)
	}
}

// DrainSite retires every live glidein at the named site, evicting
// running jobs back to their schedds (a site outage beginning). It
// returns how many glideins were drained. Pending requests for the
// site still arrive unless the SiteDown hook reports it down.
func (p *Pool) DrainSite(name string) int {
	var doomed []*glidein
	for _, g := range p.live {
		if g.site.Name == name {
			doomed = append(doomed, g)
		}
	}
	// Ascending id — the seed's scan order — so eviction events land in
	// the user logs in the same order.
	sort.Slice(doomed, func(i, j int) bool { return doomed[i].id < doomed[j].id })
	for _, g := range doomed {
		p.expireGlidein(g)
	}
	if p.obs != nil && len(doomed) > 0 {
		p.obs.Counter("fdw_ospool_glideins_drained_total", "site", name).
			Add(uint64(len(doomed)))
	}
	return len(doomed)
}

// slotGauges refreshes live/busy slot occupancy after pool changes.
func (p *Pool) slotGauges() {
	if p.obs == nil {
		return
	}
	p.met.slotsLive.Set(float64(len(p.live)))
	p.met.slotsBusy.Set(float64(p.busy))
	p.met.pendingSlots.Set(float64(p.pending))
}

// Start arms the provisioning and negotiation tickers.
func (p *Pool) Start() {
	p.stopFns = append(p.stopFns,
		p.kernel.Ticker(0, p.cfg.ProvisionInterval, func(sim.Time) { p.provision() }),
		p.kernel.Ticker(p.cfg.NegotiationInterval/2, p.cfg.NegotiationInterval, func(sim.Time) { p.negotiate() }),
	)
}

// Stop cancels the pool's tickers; in-flight completion events still run.
func (p *Pool) Stop() {
	p.stopped = true
	for _, fn := range p.stopFns {
		fn()
	}
	p.stopFns = nil
}

// RunningCount returns the number of busy glideins.
func (p *Pool) RunningCount() int { return p.busy }

// SlotCount returns the number of live glideins (busy + idle).
func (p *Pool) SlotCount() int { return len(p.live) }

// Stats returns cumulative pool counters.
func (p *Pool) Stats() (started, completed, evictions int) {
	return p.started, p.completed, p.evictions
}

// WastedSeconds returns cumulative slot time that produced no completed
// work (failed attempts, preemptions, deadline evictions, cancelled
// claims) — the recovery A/B matrix's wasted-CPU metric.
func (p *Pool) WastedSeconds() float64 { return p.wastedSeconds }

// availability is the opportunistic capacity fraction at time t:
// a smooth cycle (other communities' load) with deterministic jitter.
func (p *Pool) availability(t sim.Time) float64 {
	base := (1 + p.cfg.AvailabilityMin) / 2
	amp := (1 - p.cfg.AvailabilityMin) / 2
	v := base + amp*math.Sin(2*math.Pi*float64(t)/float64(p.cfg.AvailabilityPeriod)+p.phase0)
	// Small bounded ripple on top, keyed to the hour so it is reproducible.
	hour := math.Floor(float64(t) / 900)
	ripple := 0.08 * math.Sin(hour*2.399963) // golden-angle hop
	v += ripple
	return math.Max(p.cfg.AvailabilityMin*0.8, math.Min(1, v))
}

// demand counts idle jobs the schedds expose this cycle.
func (p *Pool) demand() int {
	n := 0
	for _, s := range p.schedds {
		n += s.QueueDepth()
	}
	return n
}

// provision requests new glideins when demand exceeds live capacity and
// retires idle pilots that outlived their usefulness.
func (p *Pool) provision() {
	if p.stopped {
		return
	}
	now := p.kernel.Now()

	// Retire expired or long-idle pilots. Only free glideins are
	// eligible, so each site's free heap is exactly the candidate set;
	// busy pilots are handled by their scheduled expiry events.
	var doomed []*glidein
	for i := range p.sites {
		doomed = doomed[:0]
		for _, g := range p.sites[i].free {
			if now >= g.expire || (p.cfg.GlideinIdleTimeout > 0 && now-g.idleAt > p.cfg.GlideinIdleTimeout) {
				doomed = append(doomed, g)
			}
		}
		for _, g := range doomed {
			g.retired = true
			if g.expireEv != nil {
				g.expireEv.Cancel()
				g.expireEv = nil
			}
			p.removeFree(g)
			delete(p.live, g.id)
			p.sites[i].liveCount--
			if p.obs != nil {
				if now >= g.expire {
					p.met.retireExpire.Inc()
				} else {
					p.met.retireIdle.Inc()
				}
			}
		}
	}
	p.slotGauges()

	capacity := int(float64(p.cfg.TotalSlots()) * p.availability(now))
	if p.obs != nil {
		p.met.capacity.Set(float64(capacity))
	}
	desired := p.demand()
	if desired > capacity {
		desired = capacity
	}
	need := desired - len(p.live) - p.pending
	if need <= 0 {
		return
	}
	// Glidein factories respond in batches; cap the burst per cycle.
	maxBurst := p.cfg.TotalSlots() / 8
	if maxBurst < 8 {
		maxBurst = 8
	}
	if need > maxBurst {
		need = maxBurst
	}
	for i := 0; i < need; i++ {
		siteIdx := p.pickSite()
		if siteIdx < 0 {
			break
		}
		p.pending++
		if p.obs != nil {
			p.met.requested[siteIdx].Inc()
		}
		delay := sim.Time(p.rng.Exp(float64(p.cfg.GlideinRampMean)))
		if delay < 30 {
			delay = 30
		}
		p.kernel.After(delay, func() { p.glideinArrives(siteIdx) })
	}
}

// pickSite chooses a site (by index) weighted by its remaining slot
// headroom, skipping sites an outage has taken down. Returns -1 when
// no site has headroom.
func (p *Pool) pickSite() int {
	type cand struct {
		idx  int
		free int
	}
	var cands []cand
	total := 0
	now := p.kernel.Now()
	for i := range p.cfg.Sites {
		s := &p.cfg.Sites[i]
		if p.siteDown != nil && p.siteDown(s.Name, now) {
			continue
		}
		free := s.MaxSlots - p.sites[i].liveCount
		if free > 0 {
			cands = append(cands, cand{i, free})
			total += free
		}
	}
	if total == 0 {
		return -1
	}
	pick := p.rng.Intn(total)
	for _, c := range cands {
		if pick < c.free {
			return c.idx
		}
		pick -= c.free
	}
	return cands[len(cands)-1].idx
}

func (p *Pool) glideinArrives(siteIdx int) {
	p.pending--
	if p.stopped {
		return
	}
	st := &p.sites[siteIdx]
	site := st.cfg
	now := p.kernel.Now()
	if p.siteDown != nil && p.siteDown(site.Name, now) {
		// The pilot reached a site that has since gone down: it never
		// reports for duty.
		if p.obs != nil {
			p.met.lost[siteIdx].Inc()
		}
		return
	}
	speed := p.rng.TruncNormal(site.Speed, site.SpeedSD, site.Speed*0.6, site.Speed*1.6)
	g := &glidein{
		id:      p.nextID,
		site:    site,
		siteIdx: siteIdx,
		speed:   speed,
		host:    fmt.Sprintf("glidein-%d.%s", p.nextID, site.Name),
		ad:      st.ad,
		expire:  now + sim.Time(p.rng.Exp(float64(p.cfg.GlideinLifetimeMean))),
		idleAt:  now,
	}
	p.nextID++
	p.live[g.id] = g
	st.liveCount++
	p.addFree(g)
	if p.obs != nil {
		p.met.arrived[siteIdx].Inc()
		p.slotGauges()
	}
	// Pilot lifetime: if still running a job at expiry, the job is
	// preempted (evicted) and returns to the queue.
	g.expireEv = p.kernel.At(g.expire, func() { p.expireGlidein(g) })
}

func (p *Pool) expireGlidein(g *glidein) {
	if g.retired {
		return
	}
	g.retired = true
	if g.expireEv != nil {
		g.expireEv.Cancel()
		g.expireEv = nil
	}
	if g.job != nil {
		if g.done != nil {
			g.done.Cancel()
		}
		job, schedd := g.job, g.schedd
		g.done = nil
		p.evictions++
		elapsed := float64(p.kernel.Now() - job.StartTime)
		p.wastedSeconds += elapsed
		if p.obs != nil {
			p.met.preempted[g.siteIdx].Inc()
		}
		if p.recovery != nil {
			p.recovery.AttemptEnded(g.site.Name, job, AttemptPreempted, elapsed, p.kernel.Now())
		}
		p.release(g)
		_ = schedd.MarkEvicted(job)
	} else if g.heapIdx >= 0 {
		p.removeFree(g)
	}
	delete(p.live, g.id)
	p.sites[g.siteIdx].liveCount--
	p.slotGauges()
}

// negotiate runs one fair-share matchmaking cycle. The indexed
// negotiator (negotiateIndexed) is the production path; the retained
// seed linear scan (negotiate_ref.go) is switched in by the
// equivalence property test.
func (p *Pool) negotiate() {
	if p.stopped {
		return
	}
	if p.obs != nil {
		p.met.cycles.Inc()
	}
	if p.useReference {
		p.negotiateReference()
		return
	}
	p.negotiateIndexed()
}

// negotiateIndexed is the fair-share cycle over the matchmaking index:
// per-owner lazy cursors into the schedds' idle queues replace the
// per-cycle queue copy + interleaved merge, and findSlot's per-site
// heap walk replaces the per-job linear scan over every free glidein.
// Match-for-match equivalent to negotiateReference — see DESIGN.md §12
// for the argument, TestIndexedNegotiatorMatchesReference for the
// property check.
func (p *Pool) negotiateIndexed() {
	now := p.kernel.Now()

	// The per-job mask cache can outlive its jobs (claimed jobs are
	// evicted eagerly, but removed/offloaded ones are not); sweep it
	// when it clearly dominates the live idle population.
	idleTotal := p.demand()
	if len(p.maskByJob) > 4*idleTotal+1024 {
		p.maskByJob = make(map[*htcondor.Job][]bool, idleTotal)
	}

	owners := map[string]*negOwner{}
	var order []string
	for _, s := range p.schedds {
		for _, name := range s.IdleOwners() {
			no := owners[name]
			if no == nil {
				no = &negOwner{name: name, running: p.ownerRunning[name]}
				owners[name] = no
				order = append(order, name)
			}
			no.cursors = append(no.cursors, s.OwnerIdleCursor(name))
			no.schedds = append(no.schedds, s)
		}
	}
	if len(order) == 0 {
		return
	}
	sort.Strings(order) // deterministic iteration

	matches := 0
	// Round-robin across owners ordered by effective usage (fewest
	// running first) — HTCondor's fair-share in miniature.
	for matches < p.cfg.MatchesPerCycle && p.freeCount > 0 {
		sort.SliceStable(order, func(a, b int) bool {
			return owners[order[a]].running < owners[order[b]].running
		})
		progress := false
		for _, name := range order {
			no := owners[name]
			job, schedd := no.peek()
			if job == nil {
				continue
			}
			if matches >= p.cfg.MatchesPerCycle || p.freeCount == 0 {
				break
			}
			g := p.findSlot(job, now)
			no.pop()
			if g == nil {
				// Nothing in the pool matches this job now; skip the
				// owner's head-of-line job this cycle.
				continue
			}
			no.running++
			p.claim(g, job, schedd)
			matches++
			progress = true
		}
		if !progress {
			break
		}
	}
	if p.obs != nil && matches > 0 {
		p.met.matches.Add(uint64(matches))
		p.slotGauges()
	}
}

// claim starts job on glidein g: input transfer, execution, output.
func (p *Pool) claim(g *glidein, job *htcondor.Job, schedd *htcondor.Schedd) {
	if err := schedd.MarkRunning(job, g.host); err != nil {
		return
	}
	if g.heapIdx >= 0 {
		p.removeFree(g)
	}
	g.job = job
	g.schedd = schedd
	p.byJob[job] = g
	p.busy++
	p.ownerRunning[job.Owner]++
	delete(p.maskByJob, job)
	if p.traceMatch != nil {
		p.traceMatch(job, g)
	}
	p.started++

	transferIn := 0.0
	transferKey := ""
	if p.cache != nil && job.InputBytes > 0 {
		key := job.InputKey
		if key == "" {
			key = fmt.Sprintf("job-%s", job.ID())
		}
		transferKey = key
		transferIn = p.cache.TransferSeconds(g.site.Name, stash.Object{Key: key, Bytes: job.InputBytes})
	}
	exec := job.BaseExecSeconds * g.speed
	if p.cfg.ExecJitterSigma > 0 {
		exec *= p.rng.LogNormal(0, p.cfg.ExecJitterSigma)
	}
	if exec < 1 {
		exec = 1
	}
	transferOut := 0.0
	if p.cache != nil && job.OutputBytes > 0 {
		// Outputs always go back to origin storage (never cached).
		transferOut = 3 + float64(job.OutputBytes)/50e6
	}
	exitCode := 0
	if p.cfg.FailureProb > 0 && p.rng.Bool(p.cfg.FailureProb) {
		exitCode = 1
	}
	transferAborted := false
	if p.execFault != nil {
		switch fault := p.execFault(g.site.Name, job, p.kernel.Now()); {
		case fault.TransferFail:
			// The attempt dies when the input transfer lands: no
			// execution, no output.
			exitCode = 1
			exec = 0
			transferOut = 0
			transferAborted = true
		case fault.BlackHole:
			exitCode = 1
			exec = blackHoleExecSeconds
			transferOut = 0
		case fault.Fail:
			exitCode = 1
		}
	}
	if transferKey != "" && !transferAborted {
		// Only a delivery that actually lands warms the regional cache;
		// a retry after an aborted transfer pays origin bandwidth again.
		p.cache.Commit(g.site.Name, transferKey)
	}
	if p.recovery != nil {
		p.recovery.AttemptStarted(g.site.Name, job, p.kernel.Now())
	}
	if p.obs != nil {
		now := p.kernel.Now()
		if transferIn > 0 {
			p.met.transferIn.Observe(transferIn)
		}
		if sp := schedd.JobSpan(job); sp != nil {
			sp.AnnotateAt("input_transfer", now, transferIn)
			sp.AnnotateAt("execute", now+sim.Time(transferIn), exec)
		}
	}
	total := sim.Time(transferIn + exec + transferOut)
	if p.recovery != nil {
		if d := p.recovery.JobDeadlineSeconds(job, p.kernel.Now()); d > 0 && sim.Time(d) < total {
			// The attempt will outrun its wall-clock budget (HTCondor
			// periodic_remove analogue): evict at the deadline instead of
			// letting a black-hole or straggler slot hold the job until
			// the horizon. Deadline evictions do not consume the job's
			// max_retries budget — the job renegotiates like a preemption.
			deadline := sim.Time(d)
			g.done = p.kernel.After(deadline, func() {
				g.done = nil
				if g.job != job {
					return // evicted meanwhile
				}
				p.release(g)
				p.evictions++
				p.wastedSeconds += float64(deadline)
				if p.obs != nil {
					p.met.deadline[g.siteIdx].Inc()
				}
				if p.recovery != nil {
					p.recovery.AttemptEnded(g.site.Name, job, AttemptDeadline, float64(deadline), p.kernel.Now())
				}
				_ = schedd.MarkEvicted(job)
				p.slotGauges()
			})
			return
		}
	}
	g.done = p.kernel.After(total, func() {
		g.done = nil
		if g.job != job {
			return // evicted meanwhile
		}
		p.release(g)
		if exitCode != 0 {
			p.wastedSeconds += float64(total)
		}
		if p.recovery != nil {
			outcome := AttemptOK
			if exitCode != 0 {
				outcome = AttemptFailed
			}
			p.recovery.AttemptEnded(g.site.Name, job, outcome, float64(total), p.kernel.Now())
		}
		if exitCode != 0 && job.Failures < job.MaxRetries {
			// Job-level retry (max_retries): the failed attempt
			// re-queues instead of terminating the job.
			job.Failures++
			p.evictions++
			if p.obs != nil {
				p.met.jobRetries.Inc()
			}
			_ = schedd.MarkEvicted(job)
			return
		}
		p.completed++
		_ = schedd.MarkCompleted(job, exitCode)
		p.slotGauges()
	})
}

// CancelClaim tears down the running claim for j, freeing its glidein
// without changing the job's schedd state — the caller decides what the
// job becomes next (the recovery layer's hedging uses this to reclaim
// the losing attempt's slot before AdoptResult/AbortRunning). The
// slot's elapsed time counts as wasted. It reports whether a running
// claim for j was found.
func (p *Pool) CancelClaim(j *htcondor.Job) bool {
	g := p.byJob[j]
	if g == nil {
		return false
	}
	if g.done != nil {
		g.done.Cancel()
		g.done = nil
	}
	p.release(g)
	p.wastedSeconds += float64(p.kernel.Now() - j.StartTime)
	if p.obs != nil {
		p.met.cancelled[g.siteIdx].Inc()
	}
	p.slotGauges()
	return true
}

// RunUntilDone advances the kernel until every registered schedd has
// drained or the horizon passes; it returns an error on timeout.
// The pool is stopped either way, and every schedd's user log is
// flushed so the on-disk text is complete.
func (p *Pool) RunUntilDone(horizon sim.Time) error {
	allDone := func() bool {
		for _, s := range p.schedds {
			if !s.Done() {
				return false
			}
		}
		return true
	}
	for !allDone() && p.kernel.Now() < horizon {
		if !p.kernel.Step() {
			break
		}
	}
	p.Stop()
	for _, s := range p.schedds {
		_ = s.Log().Flush()
	}
	if !allDone() {
		return fmt.Errorf("ospool: workload not drained by horizon %v (completed %d): %s",
			horizon, p.completed, p.stuckDiagnostic())
	}
	return nil
}

// stuckDiagnostic summarizes queue and pool state for the horizon
// timeout error, so a chaos-sweep failure is debuggable from the error
// string alone.
func (p *Pool) stuckDiagnostic() string {
	var idle, running, held, staged, completed, removed int
	for _, s := range p.schedds {
		staged += s.StagedCount()
		idle += s.QueueDepth()
		for _, j := range s.AllJobs() {
			switch j.Status {
			case htcondor.Running:
				running++
			case htcondor.Held:
				held++
			case htcondor.Completed:
				completed++
			case htcondor.Removed:
				removed++
			}
		}
	}
	msg := fmt.Sprintf("jobs idle=%d running=%d held=%d staged=%d completed=%d removed=%d; glideins live=%d busy=%d pending=%d",
		idle, running, held, staged, completed, removed,
		len(p.live), p.busy, p.pending)
	if p.recovery != nil {
		if open := p.recovery.OpenBreakers(p.kernel.Now()); len(open) > 0 {
			msg += fmt.Sprintf("; open breakers=%v", open)
		}
	}
	return msg
}
