// Package stash models OSG's Stash Cache (now OSDF): a content
// distribution network that FDW uses to deliver the Singularity image,
// the recyclable .npy distance matrices, and the large Phase B .mseed
// archives to execute nodes. The first fetch of an object at a site
// pays origin bandwidth; subsequent fetches hit the regional cache.
package stash

import (
	"fmt"
	"sync"

	"fdw/internal/obs"
)

// Object identifies a cached artifact.
type Object struct {
	Key   string
	Bytes int64
}

// Config sets the transfer-rate model.
type Config struct {
	OriginBps float64 // origin (cold) bandwidth, bytes/s
	CacheBps  float64 // regional cache (hot) bandwidth, bytes/s
	LatencyS  float64 // fixed per-transfer setup latency, seconds
}

// DefaultConfig reflects observed OSDF behaviour: ~50 MB/s cold,
// ~200 MB/s from a warm regional cache, a few seconds of setup.
func DefaultConfig() Config {
	return Config{OriginBps: 50e6, CacheBps: 200e6, LatencyS: 3}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.OriginBps <= 0 || c.CacheBps <= 0 {
		return fmt.Errorf("stash: non-positive bandwidth")
	}
	if c.LatencyS < 0 {
		return fmt.Errorf("stash: negative latency")
	}
	return nil
}

// Cache tracks per-site warmth of objects. It is safe for concurrent
// use (the DES is single-threaded, but examples exercise it directly).
type Cache struct {
	cfg Config

	mu   sync.Mutex
	warm map[string]map[string]bool // site → key → cached
	hits int
	miss int

	obs *obs.Registry
	met stashMetrics
}

// stashMetrics holds the cache's metric handles, resolved once in
// SetObs so TransferSeconds — called for every input delivery in the
// simulation — skips the registry's name+label lookup.
type stashMetrics struct {
	hits, misses            *obs.Counter
	originBytes, cacheBytes *obs.Counter
}

// New returns an empty cache with the given configuration.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Cache{cfg: cfg, warm: map[string]map[string]bool{}}, nil
}

// SetObs attaches a metrics registry (nil disables instrumentation).
// Transfer costs are computed exactly as before; the registry only
// mirrors the hit/miss/bytes tallies.
func (c *Cache) SetObs(r *obs.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.obs = r
	if r == nil {
		c.met = stashMetrics{}
		return
	}
	c.met = stashMetrics{
		hits:        r.Counter("fdw_stash_hits_total"),
		misses:      r.Counter("fdw_stash_misses_total"),
		originBytes: r.Counter("fdw_stash_bytes_total", "tier", "origin"),
		cacheBytes:  r.Counter("fdw_stash_bytes_total", "tier", "cache"),
	}
}

// TransferSeconds returns the time to deliver obj to site. It does NOT
// mark the object warm: a transfer can still be aborted mid-flight (an
// injected TransferFail kills the attempt as the input lands), so the
// caller must call Commit once the delivery actually succeeds. Zero-byte
// objects cost only the setup latency.
func (c *Cache) TransferSeconds(site string, obj Object) float64 {
	if obj.Bytes < 0 {
		obj.Bytes = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	bps := c.cfg.OriginBps
	warm := c.warm[site][obj.Key]
	if warm {
		bps = c.cfg.CacheBps
		c.hits++
	} else {
		c.miss++
	}
	if c.obs != nil {
		if warm {
			c.met.hits.Inc()
			c.met.cacheBytes.Add(uint64(obj.Bytes))
		} else {
			c.met.misses.Inc()
			c.met.originBytes.Add(uint64(obj.Bytes))
		}
	}
	return c.cfg.LatencyS + float64(obj.Bytes)/bps
}

// Commit records a successful delivery of key to site: later fetches
// there hit the regional cache. Callers commit only after the transfer
// completed — an aborted transfer leaves the cache cold, so the retry
// pays origin bandwidth again.
func (c *Cache) Commit(site, key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.markWarm(site, key)
}

// Prewarm marks obj as already cached at site (e.g. the Singularity
// image distributed ahead of the run).
func (c *Cache) Prewarm(site string, key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.markWarm(site, key)
}

// markWarm requires c.mu held.
func (c *Cache) markWarm(site, key string) {
	siteMap := c.warm[site]
	if siteMap == nil {
		siteMap = map[string]bool{}
		c.warm[site] = siteMap
	}
	siteMap[key] = true
}

// Stats returns cumulative cache hits and misses.
func (c *Cache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.miss
}

// HitRate returns hits/(hits+misses), or 0 with no traffic.
func (c *Cache) HitRate() float64 {
	h, m := c.Stats()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}
