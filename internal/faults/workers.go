package faults

import "fmt"

// Worker-level fault plans for the campaign scheduler (internal/sched,
// DESIGN.md §16). Where faults.Plan scripts pathologies *inside* one
// simulated pool, a WorkerPlan scripts pathologies of the fleet that
// runs campaign cells: workers crashing between checkpoints, crashing
// in the narrow window between a durable checkpoint and its ack,
// going silent (heartbeat blackout) while still computing, and
// stragglers that run every cell slower than the rest of the fleet.
// Everything is scripted against deterministic trigger points — cell
// counts and sim-clock windows — never probabilities, so a crash plan
// replays identically on every run.
//
// Worker indexes are 0-based. Like site names in Plan, an index that
// exceeds the fleet size is a harmless no-op: one plan serves any
// worker count, and the scheduler property test sweeps worker counts
// against a fixed plan grid.

// WorkerCrash kills one worker at a deterministic point in its cell
// sequence. Exactly one of three trigger shapes applies:
//
//   - default: the worker dies immediately after checkpointing and
//     acking its AfterCells-th completion (clean crash — durable state
//     and coordinator state agree);
//   - MidCell: the worker dies halfway through running its
//     AfterCells-th cell — nothing was checkpointed, the in-flight
//     result is lost;
//   - BeforeAck: the worker dies after durably checkpointing its
//     AfterCells-th completion but before the ack reaches the
//     coordinator — the classic at-least-once window; recovery must
//     deduplicate by digest, not re-execute blindly.
//
// Each crash fires at most once per scheduler run. The worker rejoins
// RestartAfter sim-seconds later (the scheduler default when zero),
// reloading its durable bundle from disk.
type WorkerCrash struct {
	// Worker is the 0-based index of the worker this crash targets.
	Worker int
	// AfterCells is the 1-based completion (or, with MidCell, cell
	// attempt) count that triggers the crash.
	AfterCells int
	// MidCell kills the worker halfway through its AfterCells-th cell.
	MidCell bool
	// BeforeAck kills the worker between the checkpoint and the ack of
	// its AfterCells-th completion.
	BeforeAck bool
	// RestartAfter overrides the scheduler's restart delay for this
	// crash; zero means the scheduler default.
	RestartAfter float64
}

func (c WorkerCrash) validate() error {
	if c.Worker < 0 {
		return fmt.Errorf("faults: worker crash with negative worker index %d", c.Worker)
	}
	if c.AfterCells < 1 {
		return fmt.Errorf("faults: worker crash with AfterCells %d, want >= 1", c.AfterCells)
	}
	if c.MidCell && c.BeforeAck {
		return fmt.Errorf("faults: worker crash cannot be both MidCell and BeforeAck")
	}
	if c.RestartAfter < 0 {
		return fmt.Errorf("faults: worker crash with negative RestartAfter %v", c.RestartAfter)
	}
	return nil
}

// HeartbeatBlackout silences one worker's heartbeats during a
// sim-clock window. The worker keeps computing — only its control
// plane goes dark — so its leases expire, the coordinator reclaims the
// cells, and the eventual late completions must be arbitrated against
// any re-executions.
type HeartbeatBlackout struct {
	Worker int
	Window
}

// SlowWorker multiplies every cell runtime on one worker by Factor —
// the straggler the hedging policy exists to route around.
type SlowWorker struct {
	Worker int
	// Factor scales the worker's cell runtimes; must be >= 1.
	Factor float64
}

// WorkerPlan scripts every worker-level fault of one scheduler run.
// The zero plan injects nothing.
type WorkerPlan struct {
	Name string

	Crashes   []WorkerCrash
	Blackouts []HeartbeatBlackout
	Slow      []SlowWorker
}

// Empty reports whether the plan injects nothing.
func (p WorkerPlan) Empty() bool {
	return len(p.Crashes) == 0 && len(p.Blackouts) == 0 && len(p.Slow) == 0
}

// Validate reports malformed crash triggers, windows, or slowdown
// factors. Worker indexes are not checked against a fleet size: an
// index past the fleet is a no-op, so one plan serves any worker
// count.
func (p WorkerPlan) Validate() error {
	for _, c := range p.Crashes {
		if err := c.validate(); err != nil {
			return err
		}
	}
	for _, b := range p.Blackouts {
		if b.Worker < 0 {
			return fmt.Errorf("faults: heartbeat blackout with negative worker index %d", b.Worker)
		}
		if err := b.validate("heartbeat-blackout"); err != nil {
			return err
		}
	}
	for _, s := range p.Slow {
		if s.Worker < 0 {
			return fmt.Errorf("faults: slow worker with negative index %d", s.Worker)
		}
		if s.Factor < 1 {
			return fmt.Errorf("faults: slow worker factor %v, want >= 1", s.Factor)
		}
	}
	return nil
}

// StandardWorkerPlans is the scheduler chaos grid: the worker-failure
// pathologies federated fleets exhibit, one plan per pathology plus a
// clean baseline and a kitchen sink. The scheduler property test runs
// every plan at every worker count and steal policy and requires
// byte-identical merged output throughout.
func StandardWorkerPlans() []WorkerPlan {
	const hour = 3600
	return []WorkerPlan{
		{Name: "none"},
		{
			Name:    "crash-early",
			Crashes: []WorkerCrash{{Worker: 0, AfterCells: 1}},
		},
		{
			Name:    "crash-midcell",
			Crashes: []WorkerCrash{{Worker: 1, AfterCells: 2, MidCell: true}},
		},
		{
			Name:    "crash-before-ack",
			Crashes: []WorkerCrash{{Worker: 0, AfterCells: 2, BeforeAck: true}},
		},
		{
			Name:      "blackout",
			Blackouts: []HeartbeatBlackout{{Worker: 1, Window: Window{From: 0, Until: 4000 * hour}}},
		},
		{
			Name: "straggler",
			Slow: []SlowWorker{{Worker: 2, Factor: 20}},
		},
		{
			Name: "crash-storm",
			Crashes: []WorkerCrash{
				{Worker: 0, AfterCells: 1},
				{Worker: 1, AfterCells: 1, MidCell: true},
				{Worker: 2, AfterCells: 1, BeforeAck: true},
				{Worker: 3, AfterCells: 2},
			},
		},
		{
			Name: "everything",
			Crashes: []WorkerCrash{
				{Worker: 0, AfterCells: 1, BeforeAck: true},
				{Worker: 1, AfterCells: 2, MidCell: true},
			},
			Blackouts: []HeartbeatBlackout{{Worker: 2, Window: Window{From: 0, Until: 4000 * hour}}},
			Slow:      []SlowWorker{{Worker: 3, Factor: 12}},
		},
	}
}

// WorkerPlanByName finds a standard worker plan; "" and "none" both
// name the empty plan.
func WorkerPlanByName(name string) (WorkerPlan, error) {
	if name == "" {
		name = "none"
	}
	var names []string
	for _, p := range StandardWorkerPlans() {
		if p.Name == name {
			return p, nil
		}
		names = append(names, p.Name)
	}
	return WorkerPlan{}, fmt.Errorf("faults: unknown worker plan %q (have %v)", name, names)
}
