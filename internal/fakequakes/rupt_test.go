package fakequakes

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"fdw/internal/sim"
)

func TestRuptRoundTrip(t *testing.T) {
	f, _, d := smallSetup(t, 2)
	g, err := NewGenerator(f, d)
	if err != nil {
		t.Fatal(err)
	}
	r, err := g.GenerateMw("run000042", 8.1, sim.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteRupt(&buf, f, r); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRupt(&buf, f)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != "run000042" {
		t.Fatalf("ID %q", got.ID)
	}
	if math.Abs(got.ActualMw-r.ActualMw) > 1e-3 {
		t.Fatalf("Mw %v, want %v", got.ActualMw, r.ActualMw)
	}
	if got.Hypocenter != r.Hypocenter {
		t.Fatalf("hypocenter %d, want %d", got.Hypocenter, r.Hypocenter)
	}
	// Non-zero-slip subfaults must round-trip exactly (taper can zero a
	// handful of patch edges, so compare via maps).
	want := map[int]float64{}
	for k, idx := range r.Patch {
		if r.SlipM[k] != 0 {
			want[idx] = r.SlipM[k]
		}
	}
	if len(got.Patch) != len(want) {
		t.Fatalf("patch %d subfaults, want %d", len(got.Patch), len(want))
	}
	for k, idx := range got.Patch {
		if math.Abs(got.SlipM[k]-want[idx]) > 1e-5 {
			t.Fatalf("subfault %d slip %v, want %v", idx, got.SlipM[k], want[idx])
		}
	}
}

func TestRuptMomentPreserved(t *testing.T) {
	f, _, d := smallSetup(t, 2)
	g, _ := NewGenerator(f, d)
	r, err := g.GenerateMw("m", 8.4, sim.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteRupt(&buf, f, r); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRupt(&buf, f)
	if err != nil {
		t.Fatal(err)
	}
	var m0 float64
	for k, idx := range got.Patch {
		m0 += ShearModulusPa * f.Subfaults[idx].AreaKm2() * 1e6 * got.SlipM[k]
	}
	if mw := Magnitude(m0); math.Abs(mw-8.4) > 0.03 {
		t.Fatalf("moment magnitude after round trip %v, want ≈8.4", mw)
	}
}

func TestReadRuptErrors(t *testing.T) {
	f, _, _ := smallSetup(t, 1)
	cases := map[string]string{
		"empty":       "",
		"short row":   "1 2 3\n",
		"bad number":  "x\t0\t0\t0\t0\t0\t0\t0\t0\t1\t0\t3e10\n",
		"bad slip":    "1\t0\t0\t0\t0\t0\t0\t0\tzz\t1\t0\t3e10\n",
		"out of mesh": "99999\t0\t0\t0\t0\t0\t0\t0\t0\t1\t0\t3e10\n",
		"no slip":     "1\t0\t0\t0\t0\t0\t0\t0\t0\t0\t0\t3e10\n",
	}
	for name, src := range cases {
		if _, err := ReadRupt(strings.NewReader(src), f); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
	if _, err := ReadRupt(strings.NewReader("x"), nil); err == nil {
		t.Fatal("nil fault accepted")
	}
}

func TestWriteRuptValidation(t *testing.T) {
	f, _, _ := smallSetup(t, 1)
	var buf bytes.Buffer
	if err := WriteRupt(&buf, f, nil); err == nil {
		t.Fatal("nil rupture accepted")
	}
	if err := WriteRupt(&buf, nil, &Rupture{}); err == nil {
		t.Fatal("nil fault accepted")
	}
}

func TestRuptRowPerSubfault(t *testing.T) {
	f, _, d := smallSetup(t, 1)
	g, _ := NewGenerator(f, d)
	r, err := g.GenerateMw("m", 7.9, sim.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteRupt(&buf, f, r); err != nil {
		t.Fatal(err)
	}
	lines := 0
	for _, l := range strings.Split(buf.String(), "\n") {
		l = strings.TrimSpace(l)
		if l != "" && !strings.HasPrefix(l, "#") {
			lines++
		}
	}
	if lines != f.NumSubfaults() {
		t.Fatalf("%d rows, want one per subfault (%d)", lines, f.NumSubfaults())
	}
}
