package baseline

import (
	"testing"

	"fdw/internal/core"
)

func TestRunBreakdown(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Waveforms = 1024
	b, err := Run(AWSInstance(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 64 rupture units × 287 s / 4 cores.
	if want := 64 * 287.0 / 4; b.RuptureSecs != want {
		t.Fatalf("rupture %v, want %v", b.RuptureSecs, want)
	}
	// 512 waveform units × 144 s / 4 cores.
	if want := 512 * 144.0 / 4; b.WaveformSecs != want {
		t.Fatalf("waveform %v, want %v", b.WaveformSecs, want)
	}
	// GF serial: 121 × 60 s.
	if want := 121 * 60.0; b.GFSecs != want {
		t.Fatalf("gf %v, want %v", b.GFSecs, want)
	}
	if b.MatrixSecs != 0 {
		t.Fatal("matrix stage charged despite recycling")
	}
	// Headline scale: single host takes several hours for 1,024 full input.
	if h := b.TotalHours(); h < 6 || h > 12 {
		t.Fatalf("baseline total %v h, want 6–12", h)
	}
}

func TestMatrixStageWithoutRecycling(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.RecycleMatrices = false
	b, err := Run(AWSInstance(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b.MatrixSecs != 1200 {
		t.Fatalf("matrix %v", b.MatrixSecs)
	}
	if b.TotalSecs() != b.MatrixSecs+b.RuptureSecs+b.GFSecs+b.WaveformSecs {
		t.Fatal("TotalSecs mismatch")
	}
}

func TestSmallInputMuchFaster(t *testing.T) {
	full := core.DefaultConfig()
	small := core.DefaultConfig()
	small.Stations = 2
	bf, err := Run(AWSInstance(), full)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := Run(AWSInstance(), small)
	if err != nil {
		t.Fatal(err)
	}
	if bs.GFSecs >= bf.GFSecs {
		t.Fatal("small input GF stage not faster")
	}
}

func TestValidation(t *testing.T) {
	bad := AWSInstance()
	bad.Cores = 0
	if _, err := Run(bad, core.DefaultConfig()); err == nil {
		t.Fatal("zero cores accepted")
	}
	bad2 := AWSInstance()
	bad2.WaveformUnitSecs = 0
	if err := bad2.Validate(); err == nil {
		t.Fatal("zero unit time accepted")
	}
	cfg := core.DefaultConfig()
	cfg.Waveforms = -1
	if _, err := Run(AWSInstance(), cfg); err == nil {
		t.Fatal("invalid workload accepted")
	}
}

func TestMoreCoresFaster(t *testing.T) {
	m8 := AWSInstance()
	m8.Cores = 8
	cfg := core.DefaultConfig()
	b4, err := Run(AWSInstance(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b8, err := Run(m8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b8.TotalSecs() >= b4.TotalSecs() {
		t.Fatal("doubling cores did not reduce runtime")
	}
	// GF stage is serial: unchanged.
	if b8.GFSecs != b4.GFSecs {
		t.Fatal("GF stage should not parallelize")
	}
}
