module fdw

go 1.22
