package expt

import (
	"fmt"

	"fdw/internal/burst"
	"fdw/internal/core"
	"fdw/internal/wtrace"
)

// Fig5Cell is one parameter combination of the §4.3 bursting sweep.
// Fig. 5 cells run uncapped (the sweep explores how far each policy
// pushes VDC usage); Fig. 6 cells rerun the sweep with the paper's
// 30% bursted-job cap for the cost/runtime comparison.
type Fig5Cell struct {
	Batch      string
	ProbeSecs  float64
	MaxQueueM  float64
	Control    bool
	AvgJPM     float64 // average instant throughput, formula (6)
	MaxJPM     float64
	SDJPM      float64
	VDCPct     float64 // VDC usage: % of completions on VDC (§5.3.2)
	BurstedPct float64
	RuntimeH   float64
	CostUSD    float64 // formula (7)
}

// Fig5ProbeTimes are the paper's Policy 1 probe intervals (seconds).
var Fig5ProbeTimes = []float64{1, 2, 5, 10, 30, 60, 120}

// Fig5QueueTimesMin are the Policy 2 maximum queue times (minutes).
var Fig5QueueTimesMin = []float64{90, 120}

// Fig5Threshold is the Policy 1 instant-throughput threshold (JPM).
const Fig5Threshold = 34

// MakeBatchTraces produces the experiment's input: job-time traces of
// two real single-DAGMan batches that each generated 16,000 (scaled)
// waveforms, exactly the §4.2 runs the paper reuses in §4.3.
func MakeBatchTraces(opt Options) (batches []wtrace.BatchRecord, jobs [][]wtrace.JobRecord, err error) {
	if err := opt.validate(); err != nil {
		return nil, nil, err
	}
	total := opt.scaleN(Fig3Total)
	seeds := []uint64{opt.Seeds[0], opt.Seeds[0] + 101}
	batches = make([]wtrace.BatchRecord, len(seeds))
	jobs = make([][]wtrace.JobRecord, len(seeds))
	err = forEachIndex(opt.workers(), len(seeds), func(i int) error {
		env, err := core.NewEnvObs(seeds[i], opt.Pool, opt.Obs)
		if err != nil {
			return err
		}
		cfg := core.DefaultConfig()
		cfg.Name = fmt.Sprintf("batch%d", i+1)
		cfg.Waveforms = total
		cfg.Seed = seeds[i]
		w, err := core.NewWorkflow(cfg, env.Kernel, env.Pool, nil)
		if err != nil {
			return err
		}
		if err := attachRecovery(opt, env, w); err != nil {
			return err
		}
		if err := core.RunBatch(env, []*core.Workflow{w}, opt.Horizon); err != nil {
			return fmt.Errorf("trace batch %d: %w", i+1, err)
		}
		batches[i], jobs[i], err = wtrace.FromSchedd(cfg.Name, w.Schedd)
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	return batches, jobs, nil
}

// Fig5 reruns §4.3/§5.3.1–5.3.2: the probe-time × queue-time sweep
// over two batches with no bursting cap, with the pure-OSG control
// first for each batch.
func Fig5(opt Options) ([]Fig5Cell, error) {
	batches, jobs, err := MakeBatchTraces(opt)
	if err != nil {
		return nil, err
	}
	return Fig5FromTraces(opt, batches, jobs, 1.0, "Fig. 5")
}

// Fig6 reruns §5.3.3–5.3.4: the same sweep with the paper's 30%
// bursted-job cap, whose cost and runtime columns Fig. 6 plots.
func Fig6(opt Options) ([]Fig5Cell, error) {
	batches, jobs, err := MakeBatchTraces(opt)
	if err != nil {
		return nil, err
	}
	return Fig5FromTraces(opt, batches, jobs, burst.DefaultMaxBurstFraction, "Fig. 6")
}

// Fig5FromTraces runs the sweep over previously generated traces with
// the given bursting cap.
func Fig5FromTraces(opt Options, batches []wtrace.BatchRecord, jobs [][]wtrace.JobRecord, maxBurstFraction float64, label string) ([]Fig5Cell, error) {
	w := opt.out()
	fmt.Fprintf(w, "%s — VDC bursting sweep (threshold %d JPM, probes %v s, queue caps %v min, burst cap %.0f%%)\n",
		label, Fig5Threshold, Fig5ProbeTimes, Fig5QueueTimesMin, maxBurstFraction*100)
	fmt.Fprintf(w, "%8s %7s %7s | %8s %8s %8s | %7s %9s %9s\n",
		"batch", "probe s", "queue m", "AIT jpm", "max jpm", "VDC %", "burst %", "runtime h", "cost $")
	// Enumerate every (batch, policy) cell in print order, replay the
	// traces concurrently (Simulate only reads them), then print.
	type spec struct {
		bi            int
		probe, queueM float64
		control       bool
	}
	var specs []spec
	for bi := range batches {
		specs = append(specs, spec{bi: bi, control: true})
		for _, queueM := range Fig5QueueTimesMin {
			for _, probe := range Fig5ProbeTimes {
				specs = append(specs, spec{bi: bi, probe: probe, queueM: queueM})
			}
		}
	}
	cells := make([]Fig5Cell, len(specs))
	err := forEachIndex(opt.workers(), len(specs), func(i int) error {
		s := specs[i]
		batch := batches[s.bi]
		cfg := burst.DefaultConfig()
		cfg.Obs = opt.Obs
		cfg.MaxBurstFraction = maxBurstFraction
		if !s.control {
			cfg.P1 = &burst.Policy1{ProbeSecs: s.probe, ThresholdJPM: Fig5Threshold}
			cfg.P2 = &burst.Policy2{MaxQueueSecs: s.queueM * 60}
		}
		res, err := burst.Simulate(batch, jobs[s.bi], cfg)
		if err != nil {
			if s.control {
				return fmt.Errorf("control %s: %w", batch.Name, err)
			}
			return fmt.Errorf("%s probe %v queue %v: %w", batch.Name, s.probe, s.queueM, err)
		}
		cells[i] = cellFrom(batch.Name, s.probe, s.queueM, res)
		cells[i].Control = s.control
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, cell := range cells {
		if cell.Control {
			fmt.Fprintf(w, "%8s %7s %7s | %8.2f %8.2f %8.1f | %7.1f %9.2f %9.2f\n",
				cell.Batch, "ctl", "-", cell.AvgJPM, cell.MaxJPM, cell.VDCPct, cell.BurstedPct, cell.RuntimeH, cell.CostUSD)
			continue
		}
		fmt.Fprintf(w, "%8s %7.0f %7.0f | %8.2f %8.2f %8.1f | %7.1f %9.2f %9.2f\n",
			cell.Batch, cell.ProbeSecs, cell.MaxQueueM, cell.AvgJPM, cell.MaxJPM, cell.VDCPct,
			cell.BurstedPct, cell.RuntimeH, cell.CostUSD)
	}
	return cells, nil
}

func cellFrom(name string, probe, queueM float64, r *burst.Result) Fig5Cell {
	return Fig5Cell{
		Batch:      name,
		ProbeSecs:  probe,
		MaxQueueM:  queueM,
		AvgJPM:     r.AvgInstantJPM,
		MaxJPM:     r.MaxInstantJPM,
		SDJPM:      r.SDInstantJPM,
		VDCPct:     r.VDCUsagePct,
		BurstedPct: r.BurstedPct,
		RuntimeH:   r.RuntimeSecs / 3600,
		CostUSD:    r.CostUSD,
	}
}
