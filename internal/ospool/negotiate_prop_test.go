package ospool

import (
	"fmt"
	"testing"

	"fdw/internal/classad"
	"fdw/internal/htcondor"
	"fdw/internal/sim"
)

// This file is the equivalence property test for the matchmaking index:
// negotiateIndexed must produce the exact claim sequence of the retained
// seed negotiator (negotiate_ref.go) over randomized pools — mixed
// requirements, multiple owners spread across schedds, retries, pilot
// churn — across kernel seeds and MatchesPerCycle settings, with and
// without a stateful recovery veto in the match path.

// propSites is a deliberately heterogeneous pool: per-site ads differ
// in Cpus, Memory, and name, so requirement expressions carve out
// different site subsets and the per-site match masks are non-trivial.
func propSites() []SiteConfig {
	return []SiteConfig{
		{Name: "alpha", MaxSlots: 30, Speed: 1.00, SpeedSD: 0.10, CpusPer: 4, MemoryMB: 16384},
		{Name: "beta", MaxSlots: 18, Speed: 0.90, SpeedSD: 0.12, CpusPer: 8, MemoryMB: 32768},
		{Name: "gamma", MaxSlots: 12, Speed: 1.10, SpeedSD: 0.08, CpusPer: 2, MemoryMB: 8192},
	}
}

func propConfig(mpc int) Config {
	return Config{
		Sites:               propSites(),
		NegotiationInterval: 30,
		ProvisionInterval:   60,
		MatchesPerCycle:     mpc,
		GlideinRampMean:     180,
		GlideinLifetimeMean: 2 * 3600,
		GlideinIdleTimeout:  900,
		AvailabilityPeriod:  2 * 3600,
		AvailabilityMin:     0.5,
		ExecJitterSigma:     0.2,
		FailureProb:         0.06, // exercise retry re-queues mid-run
	}
}

// propJobs generates n jobs from its own RNG stream (independent of the
// kernel, so both pool variants see an identical workload). Every
// requirement template matches at least one site, so the batch drains.
func propJobs(r *sim.RNG, n int, owner string) []*htcondor.Job {
	jobs := make([]*htcondor.Job, n)
	for i := range jobs {
		j := &htcondor.Job{
			Owner:           owner,
			RequestCpus:     1 + r.Intn(2),
			RequestMemoryMB: 2048 + 2048*r.Intn(3),
			BaseExecSeconds: 120 + 60*float64(r.Intn(5)),
			MaxRetries:      r.Intn(3),
		}
		switch r.Intn(7) {
		case 0:
			// Match anything.
		case 1:
			j.Requirements = `TARGET.GLIDEIN_Site == "beta"`
		case 2:
			j.Requirements = `TARGET.Memory >= 20000` // beta only
		case 3:
			j.Requirements = `TARGET.Cpus >= 4` // alpha, beta
		case 4:
			j.Requirements = `TARGET.GLIDEIN_Site != "gamma" && TARGET.HasSingularity`
		case 5:
			// MY-side attribute reference: the match mask must key on
			// the job's Tier value, not just the expression source.
			j.Requirements = `MY.Tier == "gold" || TARGET.Memory >= 8192`
			tier := "gold"
			if r.Bool(0.5) {
				tier = "silver"
			}
			j.Attrs = classad.Ad{"Tier": classad.String(tier)}
		case 6:
			j.Requirements = `TARGET.Memory >= 4096 && TARGET.Cpus >= 2`
		}
		jobs[i] = j
	}
	return jobs
}

// flakyVeto is a deterministic, time-varying RecoveryHook standing in
// for a circuit breaker: sites sit out windows of simulated time. It is
// stateless across calls at a fixed now (like Breaker.VetoMatch, whose
// open→half-open transition is idempotent per instant), which is the
// contract the index's per-site consultation dedup relies on.
type flakyVeto struct{ consults int }

func (v *flakyVeto) VetoMatch(site string, now sim.Time) bool {
	v.consults++
	return (int64(now)/600+int64(site[0]))%4 == 0
}

func (v *flakyVeto) JobDeadlineSeconds(*htcondor.Job, sim.Time) float64 { return 0 }
func (v *flakyVeto) AttemptStarted(string, *htcondor.Job, sim.Time)     {}
func (v *flakyVeto) AttemptEnded(string, *htcondor.Job, AttemptOutcome, float64, sim.Time) {
}
func (v *flakyVeto) OpenBreakers(sim.Time) []string { return nil }

// propRun executes one randomized workload to completion and returns
// the full claim trace plus terminal statistics.
func propRun(t *testing.T, seed uint64, mpc int, useRef, withVeto bool) (trace []string, started, completed, evictions int) {
	t.Helper()
	k := sim.NewKernel(seed)
	p, err := New(k, propConfig(mpc), nil)
	if err != nil {
		t.Fatal(err)
	}
	p.useReference = useRef
	p.traceMatch = func(j *htcondor.Job, g *glidein) {
		trace = append(trace, fmt.Sprintf("%.0f %s/%s -> g%d@%s", float64(k.Now()), g.schedd.Name, j.ID(), g.id, g.site.Name))
	}
	if withVeto {
		p.SetRecovery(&flakyVeto{})
	}

	// Two schedds, three owners interleaved across both — the shape that
	// exercises the owner-cursor round-robin against mergeInterleaved.
	s1 := htcondor.NewSchedd("dag1", k, nil)
	s2 := htcondor.NewSchedd("dag2", k, nil)
	p.AddSchedd(s1)
	p.AddSchedd(s2)
	jr := sim.NewRNG(seed ^ 0x9e3779b97f4a7c15)
	for _, owner := range []string{"u1", "u2", "u3"} {
		for _, s := range []*htcondor.Schedd{s1, s2} {
			if _, err := s.Submit(propJobs(jr, 60, owner)); err != nil {
				t.Fatal(err)
			}
		}
	}
	p.Start()
	if err := p.RunUntilDone(96 * 3600); err != nil {
		t.Fatal(err)
	}
	started, completed, evictions = p.Stats()
	return trace, started, completed, evictions
}

// TestIndexedNegotiatorMatchesReference is the property: over random
// workloads × seeds × MatchesPerCycle × veto on/off, the indexed
// negotiator claims the same (job, glidein) pairs at the same times in
// the same order as the retained seed linear scan.
func TestIndexedNegotiatorMatchesReference(t *testing.T) {
	for _, seed := range []uint64{3, 17, 251} {
		for _, mpc := range []int{7, 60, 500} {
			for _, veto := range []bool{false, true} {
				name := fmt.Sprintf("seed%d/mpc%d/veto%v", seed, mpc, veto)
				t.Run(name, func(t *testing.T) {
					refTrace, rs, rc, re := propRun(t, seed, mpc, true, veto)
					idxTrace, is, ic, ie := propRun(t, seed, mpc, false, veto)
					if rs != is || rc != ic || re != ie {
						t.Fatalf("stats diverge: ref started/completed/evictions %d/%d/%d, indexed %d/%d/%d",
							rs, rc, re, is, ic, ie)
					}
					if len(refTrace) != len(idxTrace) {
						t.Fatalf("trace lengths diverge: ref %d, indexed %d", len(refTrace), len(idxTrace))
					}
					for i := range refTrace {
						if refTrace[i] != idxTrace[i] {
							t.Fatalf("claim %d diverges:\n  ref:     %s\n  indexed: %s", i, refTrace[i], idxTrace[i])
						}
					}
					if rs == 0 {
						t.Fatal("degenerate run: no claims made")
					}
				})
			}
		}
	}
}
